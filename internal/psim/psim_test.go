package psim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"sspubsub/internal/sim"
)

// chatter is a test handler: every timeout it sends fanout messages to
// pseudo-random peers (drawn from its lane stream), and it records every
// delivery it observes in its own trace. All state is lane-confined.
type chatter struct {
	id     sim.NodeID
	peers  []sim.NodeID
	fanout int
	recv   []string
	ticks  int
}

type ping struct{ Hop int }

func (c *chatter) OnTimeout(ctx sim.Context) {
	c.ticks++
	for i := 0; i < c.fanout; i++ {
		to := c.peers[ctx.Rand().Intn(len(c.peers))]
		ctx.Send(to, 1, ping{Hop: 0})
	}
}

func (c *chatter) OnMessage(ctx sim.Context, m sim.Message) {
	p := m.Body.(ping)
	c.recv = append(c.recv, fmt.Sprintf("%d@%.6f#%d", m.From, ctx.Now(), p.Hop))
	if p.Hop < 2 {
		// Bounce onward: keeps cross-lane traffic flowing mid-window.
		to := c.peers[ctx.Rand().Intn(len(c.peers))]
		ctx.Send(to, 1, ping{Hop: p.Hop + 1})
	}
}

// buildMesh registers n chatters on a fresh engine and returns them.
func buildMesh(opts Options, n, fanout int) (*Engine, []*chatter) {
	e := New(opts)
	peers := make([]sim.NodeID, n)
	for i := range peers {
		peers[i] = sim.NodeID(i + 1)
	}
	cs := make([]*chatter, n)
	for i := range cs {
		cs[i] = &chatter{id: peers[i], peers: peers, fanout: fanout}
		e.AddNode(peers[i], cs[i])
	}
	return e, cs
}

// snapshot captures everything the determinism contract promises is
// worker-independent.
func snapshot(e *Engine, cs []*chatter) string {
	s := fmt.Sprintf("now=%.6f delivered=%d dropped=%d inflight=%d queuelen=%d hw=%d types=%v\n",
		e.Now(), e.Delivered(), e.Dropped(), e.InFlight(), e.QueueLen(),
		e.QueueHighWaterBytes(), e.TypeNames())
	for _, c := range cs {
		s += fmt.Sprintf("node %d ticks=%d sent=%d recv=%d trace=%v\n",
			c.id, c.ticks, e.SentBy(c.id), e.ReceivedBy(c.id), c.recv)
	}
	return s
}

// TestWorkerIndependence is the core contract: the full delivery trace —
// senders, times, payloads, per-node ordering — is bit-identical for every
// worker count.
func TestWorkerIndependence(t *testing.T) {
	const n, fanout, rounds = 100, 3, 20
	var want string
	for _, workers := range []int{1, 2, 4, 8} {
		e, cs := buildMesh(Options{Seed: 7, Lanes: 8, Workers: workers}, n, fanout)
		e.RunRounds(rounds)
		got := snapshot(e, cs)
		e.Close()
		if workers == 1 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("workers=%d diverged from workers=1:\n--- got ---\n%.2000s\n--- want ---\n%.2000s", workers, got, want)
		}
	}
	if want == "" {
		t.Fatal("no baseline")
	}
}

// TestLaneCountChangesSchedule documents that Lanes IS part of the
// schedule identity (unlike Workers).
func TestLaneCountChangesSchedule(t *testing.T) {
	e8, cs8 := buildMesh(Options{Seed: 7, Lanes: 8, Workers: 1}, 64, 2)
	e8.RunRounds(10)
	e4, cs4 := buildMesh(Options{Seed: 7, Lanes: 4, Workers: 1}, 64, 2)
	e4.RunRounds(10)
	if snapshot(e8, cs8) == snapshot(e4, cs4) {
		t.Fatal("different lane counts produced identical traces — suspicious (schedule should differ)")
	}
}

type sink struct{ got []sim.Message }

func (s *sink) OnTimeout(sim.Context)                  {}
func (s *sink) OnMessage(_ sim.Context, m sim.Message) { s.got = append(s.got, m) }

// TestListenerRouting checks the pool-listener seam: listeners execute on
// their owner's handler, owner crash silences them, and re-registration
// elsewhere keeps stale in-flight traffic dropped.
func TestListenerRouting(t *testing.T) {
	e := New(Options{Seed: 1, Lanes: 4, Workers: 1})
	owner := &sink{}
	e.AddNode(10, owner)
	e.AddListener(1000, 10)
	e.Send(sim.Message{To: 1000, From: 99, Topic: 1, Body: ping{}})
	e.RunRounds(2)
	if len(owner.got) != 1 || owner.got[0].To != 1000 {
		t.Fatalf("owner saw %v, want one message addressed to listener 1000", owner.got)
	}
	if e.Handler(1000) == nil {
		t.Fatal("Handler(listener) should resolve to the owner's handler")
	}
	e.Crash(10)
	e.Send(sim.Message{To: 1000, From: 99, Topic: 1, Body: ping{}})
	before := e.Dropped()
	e.RunRounds(2)
	if len(owner.got) != 1 {
		t.Fatalf("crashed owner still received: %v", owner.got)
	}
	if e.Dropped() <= before {
		t.Fatal("delivery to orphaned listener should count as dropped")
	}
}

// TestDetectorGrace pins the barrier-time suspicion semantics.
func TestDetectorGrace(t *testing.T) {
	e := New(Options{Seed: 1, Lanes: 2, Workers: 1, DetectorGrace: 2})
	e.AddNode(5, &sink{})
	e.RunRounds(1)
	e.Crash(5)
	if !e.Crashed(5) {
		t.Fatal("Crashed(5) = false after Crash")
	}
	if e.Suspects(5) {
		t.Fatal("suspected immediately — grace ignored")
	}
	e.RunRounds(1)
	if e.Suspects(5) {
		t.Fatal("suspected after 1 round with grace 2")
	}
	e.RunRounds(2)
	if !e.Suspects(5) {
		t.Fatal("not suspected after grace expired")
	}
	if e.Suspects(6) {
		t.Fatal("suspects a node that never existed")
	}
}

// TestOverflowCeilingDeterministic: the per-lane ceiling sheds the same
// messages at every worker count, and shedding is visible in accounting.
func TestOverflowCeilingDeterministic(t *testing.T) {
	run := func(workers int) (string, int64) {
		e, cs := buildMesh(Options{Seed: 3, Lanes: 4, Workers: workers, MaxQueuedEvents: 64}, 48, 6)
		e.RunRounds(12)
		s := snapshot(e, cs)
		ov := e.OverflowDropped()
		e.Close()
		return s, ov
	}
	s1, ov1 := run(1)
	s4, ov4 := run(4)
	if ov1 == 0 {
		t.Fatal("ceiling never tripped — test not exercising overflow")
	}
	if ov1 != ov4 || s1 != s4 {
		t.Fatalf("overflow shedding diverged across workers: ov1=%d ov4=%d", ov1, ov4)
	}
}

// TestLaneFaultDeterministic: randomized per-lane fault filters replay
// identically at every worker count.
func TestLaneFaultDeterministic(t *testing.T) {
	factory := func(lane int, rng *rand.Rand) sim.FaultFunc {
		return func(m sim.Message) sim.FaultAction {
			switch x := rng.Float64(); {
			case x < 0.2:
				return sim.FaultDrop
			case x < 0.3:
				return sim.FaultDup
			case x < 0.4:
				return sim.FaultDelay
			}
			return sim.FaultDeliver
		}
	}
	run := func(workers int) string {
		e, cs := buildMesh(Options{Seed: 11, Lanes: 8, Workers: workers}, 64, 3)
		e.SetLaneFault(factory)
		e.RunRounds(15)
		s := snapshot(e, cs)
		e.Close()
		return s
	}
	if s1, s8 := run(1), run(8); s1 != s8 {
		t.Fatal("lane-fault schedule diverged between workers=1 and workers=8")
	}
}

// TestHighWater: the barrier high-water mark is positive, deterministic,
// and at least the final queue length.
func TestHighWater(t *testing.T) {
	e, _ := buildMesh(Options{Seed: 5, Lanes: 4, Workers: 1}, 32, 4)
	e.RunRounds(10)
	hw := e.QueueHighWaterBytes()
	if hw == 0 {
		t.Fatal("high water stayed 0 over a traffic-heavy run")
	}
	if perEvent := hw / uint64(e.highWater); hw < uint64(e.QueueLen())*perEvent {
		t.Fatalf("high water %d below current queue footprint (%d events)", hw, e.QueueLen())
	}
}

// TestRunUntilExecutesEverythingDue pins RunUntil's contract: after
// RunUntil(target), no queued event anywhere — lane heaps or cross-lane
// inboxes — may still carry t <= target. The regression this guards:
// window selection used to scan only lane heaps while the previous
// window's cross-lane events were still in inboxes, so a pending inbox
// event older than every heap min could be skipped past (executing in a
// too-late window, or not at all when every heap min exceeded target).
func TestRunUntilExecutesEverythingDue(t *testing.T) {
	e, _ := buildMesh(Options{Seed: 13, Lanes: 8, Workers: 1}, 64, 3)
	for i := 0; i < 60; i++ {
		// Fractional, window-misaligned increments land targets mid-window,
		// the regime where heap-only scanning went wrong.
		target := e.Now() + 0.173
		e.RunUntil(target)
		for _, l := range e.lanes {
			if len(l.heap) > 0 && l.heap[0].t <= target {
				t.Fatalf("step %d: lane %d still holds event at t=%.6f <= target %.6f after RunUntil",
					i, l.idx, l.heap[0].t, target)
			}
			for src, buf := range l.inbox {
				if len(buf) != 0 {
					t.Fatalf("step %d: lane %d inbox[%d] not drained at barrier (%d events)",
						i, l.idx, src, len(buf))
				}
			}
		}
	}
}

// TestCrossLaneEventNotStranded is the surgical reproduction of the
// window-selection bug: a cross-lane delivery parked in an inbox, older
// than every heap min, must still execute by RunUntil(target) when its
// delivery time is <= target. Before the fix, the min scan saw only
// heaps (all of whose mins exceeded target), so RunUntil returned with
// the due delivery still queued.
func TestCrossLaneEventNotStranded(t *testing.T) {
	e := New(Options{Seed: 21, Lanes: 4, Workers: 1, MinDelay: 0.05, MaxDelay: 0.06})
	// Pick sender a with an early timeout phase and receiver b on a
	// different lane whose first timeout lands well after the target, so
	// after a's window the only due event is the delivery sitting in b's
	// lane inbox.
	var a, b sim.NodeID
	for id := sim.NodeID(1); id <= 200 && (a == sim.None || b == sim.None); id++ {
		switch {
		case a == sim.None && e.phaseOf(id) < 0.3:
			a = id
		case a != sim.None && b == sim.None && e.laneOf(id) != e.laneOf(a) && e.phaseOf(id) > e.phaseOf(a)+0.3:
			b = id
		}
	}
	if a == sim.None || b == sim.None {
		t.Fatal("no suitable (sender, receiver) pair among ids 1..200 for this seed")
	}
	sent := false
	e.AddNode(a, handlerFunc(func(ctx sim.Context) {
		if !sent {
			sent = true
			ctx.Send(b, 1, ping{})
		}
	}))
	rcv := &sink{}
	e.AddNode(b, rcv)
	// Past the delivery (due <= phase(a)+MaxDelay) yet before b's first
	// timeout, so b's lane heap min exceeds the target.
	target := e.phaseOf(a) + 0.08
	e.RunUntil(target)
	if len(rcv.got) != 1 {
		t.Fatalf("delivery due at t <= %.4f not executed by RunUntil(%.4f): got %d deliveries",
			e.phaseOf(a)+0.06, target, len(rcv.got))
	}
}

// TestClosedEngineRunPanics: running a closed engine must fail loudly
// with a clear error instead of blocking on (or sending to) a dead
// worker pool.
func TestClosedEngineRunPanics(t *testing.T) {
	e, _ := buildMesh(Options{Seed: 1, Lanes: 4, Workers: 2}, 8, 1)
	e.RunRounds(1)
	e.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("RunRounds on a closed engine did not panic")
		}
		if s, _ := r.(string); s == "" || !containsClosed(s) {
			t.Fatalf("panic %v does not name the closed engine", r)
		}
	}()
	e.RunRounds(1)
}

func containsClosed(s string) bool {
	for i := 0; i+6 <= len(s); i++ {
		if s[i:i+6] == "closed" {
			return true
		}
	}
	return false
}

// TestRunRoundsUntil covers the poll loop incl. the already-true case.
func TestRunRoundsUntil(t *testing.T) {
	e, cs := buildMesh(Options{Seed: 2, Lanes: 2, Workers: 1}, 8, 1)
	if r, ok := e.RunRoundsUntil(10, func() bool { return true }); r != 0 || !ok {
		t.Fatalf("already-true pred: got (%d,%v), want (0,true)", r, ok)
	}
	r, ok := e.RunRoundsUntil(50, func() bool { return cs[0].ticks >= 3 })
	if !ok || r < 3 {
		t.Fatalf("pred never held or held early: (%d,%v)", r, ok)
	}
	if _, ok := e.RunRoundsUntil(1, func() bool { return false }); ok {
		t.Fatal("impossible pred reported ok")
	}
}

// TestExternalSendAndInjectAt: driver injections are deterministic and
// InjectAt clamps to the present.
func TestExternalSendAndInjectAt(t *testing.T) {
	run := func(workers int) []sim.Message {
		e := New(Options{Seed: 9, Lanes: 4, Workers: workers})
		s := &sink{}
		e.AddNode(3, s)
		e.RunRounds(1)
		e.Send(sim.Message{To: 3, From: 77, Topic: 1, Body: ping{Hop: 1}})
		e.InjectAt(0 /* in the past */, sim.Message{To: 3, From: 78, Topic: 1, Body: ping{Hop: 2}})
		e.RunRounds(2)
		e.Close()
		return s.got
	}
	g1, g4 := run(1), run(4)
	if len(g1) != 2 {
		t.Fatalf("expected both injections delivered, got %v", g1)
	}
	if !reflect.DeepEqual(g1, g4) {
		t.Fatalf("external sends diverged: %v vs %v", g1, g4)
	}
}

// TestBarrierGuard: calling a barrier operation from inside a handler
// panics rather than corrupting the run.
func TestBarrierGuard(t *testing.T) {
	e := New(Options{Seed: 1, Lanes: 2, Workers: 1})
	tripped := make(chan any, 1)
	e.AddNode(4, handlerFunc(func(ctx sim.Context) {
		defer func() { tripped <- recover() }()
		e.AddNode(5, &sink{})
	}))
	e.RunRounds(1)
	if r := <-tripped; r == nil {
		t.Fatal("AddNode from inside a handler did not panic")
	}
}

// TestBarrierGuardNoneSend: a mid-window Send with To == ⊥ and an
// unregistered From must trip the barrier guard like every other
// external-path misuse, not silently race on lane 0's counters.
func TestBarrierGuardNoneSend(t *testing.T) {
	e := New(Options{Seed: 1, Lanes: 2, Workers: 1})
	tripped := make(chan any, 1)
	e.AddNode(4, handlerFunc(func(ctx sim.Context) {
		defer func() { tripped <- recover() }()
		e.Send(sim.Message{To: sim.None, From: 999})
	}))
	e.RunRounds(1)
	if r := <-tripped; r == nil {
		t.Fatal("Send(To=⊥, unregistered From) from inside a handler did not panic")
	}
	// At a barrier the same send is legal and counts as a drop.
	before := e.Dropped()
	e.Send(sim.Message{To: sim.None, From: 999})
	if e.Dropped() != before+1 {
		t.Fatal("barrier-time Send to ⊥ with unregistered From not counted as dropped")
	}
}

type handlerFunc func(sim.Context)

func (f handlerFunc) OnTimeout(ctx sim.Context)          { f(ctx) }
func (f handlerFunc) OnMessage(sim.Context, sim.Message) {}
