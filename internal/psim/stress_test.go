package psim

import (
	"testing"

	"sspubsub/internal/sim"
)

// edgeHammer is built to abuse the barrier/merge path: on every event it
// sprays messages at nodes chosen to land on OTHER lanes, so nearly all
// traffic crosses the outbox/inbox swap, and the bounce chain keeps every
// window densely populated right up to its edge (each delivery at t
// schedules follow-ups in [t+MinDelay, t+MaxDelay) — the early part of
// that range is exactly the next window's opening edge).
type edgeHammer struct {
	id      sim.NodeID
	others  []sim.NodeID // peers on foreign lanes only
	recv    int
	burst   int
	bounces int
}

type spark struct{ Gen int }

func (h *edgeHammer) OnTimeout(ctx sim.Context) {
	for i := 0; i < h.burst; i++ {
		ctx.Send(h.others[ctx.Rand().Intn(len(h.others))], 1, spark{})
	}
}

func (h *edgeHammer) OnMessage(ctx sim.Context, m sim.Message) {
	h.recv++
	s := m.Body.(spark)
	if s.Gen < h.bounces {
		ctx.Send(h.others[ctx.Rand().Intn(len(h.others))], 1, spark{Gen: s.Gen + 1})
	}
}

// TestBarrierMergeStress hammers the cross-lane merge with maximum
// parallelism and verifies (a) under -race: no data race anywhere in the
// window/barrier machinery, and (b) the resulting accounting is
// bit-identical to the inline (workers=1) execution of the same schedule.
func TestBarrierMergeStress(t *testing.T) {
	const n, rounds = 96, 30
	run := func(workers int) (int64, int64, float64, []int) {
		e := New(Options{Seed: 42, Lanes: 8, Workers: workers})
		ids := make([]sim.NodeID, n)
		for i := range ids {
			ids[i] = sim.NodeID(i + 1)
		}
		hs := make([]*edgeHammer, n)
		for i, id := range ids {
			h := &edgeHammer{id: id, burst: 4, bounces: 3}
			myLane := e.laneOf(id)
			for _, o := range ids {
				if e.laneOf(o) != myLane {
					h.others = append(h.others, o)
				}
			}
			hs[i] = h
			e.AddNode(id, h)
		}
		e.RunRounds(rounds)
		recv := make([]int, n)
		for i, h := range hs {
			recv[i] = h.recv
		}
		d, dr, now := e.Delivered(), e.Dropped(), e.Now()
		e.Close()
		return d, dr, now, recv
	}

	d1, dr1, now1, recv1 := run(1)
	d8, dr8, now8, recv8 := run(8)
	if d1 == 0 {
		t.Fatal("no deliveries — stress not exercising anything")
	}
	if d1 != d8 || dr1 != dr8 || now1 != now8 {
		t.Fatalf("accounting diverged: workers=1 (%d,%d,%v) vs workers=8 (%d,%d,%v)",
			d1, dr1, now1, d8, dr8, now8)
	}
	for i := range recv1 {
		if recv1[i] != recv8[i] {
			t.Fatalf("node %d receive count diverged: %d vs %d", i+1, recv1[i], recv8[i])
		}
	}
}

// TestBarrierMergeStressRepeated re-runs the parallel configuration many
// times under the race detector: scheduling jitter across repetitions is
// what actually shakes out ordering bugs in the swap/ingest phases.
func TestBarrierMergeStressRepeated(t *testing.T) {
	if testing.Short() {
		t.Skip("repetition stress skipped in -short")
	}
	var want string
	for rep := 0; rep < 8; rep++ {
		e, cs := buildMesh(Options{Seed: 1234, Lanes: 8, Workers: 8}, 64, 4)
		e.RunRounds(10)
		got := snapshot(e, cs)
		e.Close()
		if rep == 0 {
			want = got
		} else if got != want {
			t.Fatalf("repetition %d diverged from repetition 0", rep)
		}
	}
}
