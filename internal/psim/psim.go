package psim

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"

	"sspubsub/internal/sim"
)

// Options configure a parallel deterministic simulation.
//
// The schedule identity is (Seed, Lanes, MinDelay, MaxDelay): two runs with
// equal values execute bit-identical event sequences — same deliveries, same
// timeouts, same random draws — regardless of Workers. Workers only chooses
// how many OS threads execute the schedule; it may change wall-clock time
// and nothing else.
type Options struct {
	// Seed drives all randomness. Each lane derives its own stream from
	// (Seed, lane), so the sequence a handler observes depends only on the
	// schedule identity, never on physical parallelism.
	Seed int64
	// Lanes is the number of deterministic shards nodes are partitioned
	// into (by hash of NodeID). It is part of the schedule identity:
	// changing it changes the (still deterministic) schedule. Default 16.
	Lanes int
	// Workers is the number of goroutines executing lanes inside each
	// lookahead window. It is NOT part of the schedule identity: any value
	// produces bit-identical results. Workers == 1 executes the whole
	// schedule serially on the calling goroutine (no goroutines are
	// spawned — the serial engine). Default min(GOMAXPROCS, Lanes);
	// clamped to [1, Lanes].
	Workers int
	// MinDelay and MaxDelay bound message delivery delay, in timeout
	// intervals (defaults 0.05 and 0.95, as on sim.Scheduler). MinDelay is
	// the engine's lookahead: a message sent at time t delivers no earlier
	// than t+MinDelay, so events inside a window of width MinDelay cannot
	// causally interact and lanes may execute them in parallel.
	MinDelay, MaxDelay float64
	// DetectorGrace is how long after a crash the failure detector keeps
	// answering "alive". Suspicion flips at the window boundary at or after
	// crashTime+DetectorGrace (the serial scheduler flips mid-window; the
	// difference is below one lookahead width and identical for every
	// Workers value). Default 2 intervals.
	DetectorGrace float64
	// MaxQueuedEvents, when positive, caps queued events. The ceiling is
	// split evenly across lanes and enforced at the sending lane, so
	// shedding decisions are lane-local and Workers-independent. Timeout
	// events are never shed. 0 means unbounded.
	//
	// The per-lane ceiling is an approximation of a global cap, not an
	// exact one: a cross-lane send is checked against the SENDING lane's
	// heap even though the event will occupy the destination lane's heap,
	// and events merged from outboxes at the window barrier are never
	// re-checked. A hot destination lane fed by many remote senders can
	// therefore keep growing past its even share (by up to one window's
	// cross-lane traffic per barrier, with no cumulative bound), while a
	// busy sender sheds messages bound for idle lanes. The total across
	// lanes can thus exceed MaxQueuedEvents when traffic is skewed.
	// This looseness is deliberate — exact global accounting
	// would require cross-lane coordination mid-window, breaking the
	// lane-local determinism that makes shedding Workers-independent.
	MaxQueuedEvents int
}

// Engine is a conservative parallel discrete-event executor for
// sim.Handlers: the multi-core sibling of sim.Scheduler.
//
// Nodes (and their pool listeners) are partitioned across Lanes lanes by a
// deterministic hash of NodeID. Each lane owns an event min-heap, its own
// seeded random stream, and the exclusive right to execute its nodes'
// handlers. Execution proceeds in lookahead windows of width MinDelay:
// because any Send at time t delivers no earlier than t+MinDelay, no event
// inside a window can causally affect another event in the same window —
// across lanes or within one — so all lanes run their window slice
// concurrently. Cross-lane sends are buffered per (srcLane, dstLane) and
// merged at the window barrier; every event carries a (deliverTime,
// srcLane, srcSeq) key that totally orders each lane's heap, so the merge
// produces one canonical schedule no matter how many workers executed the
// window.
//
// The engine implements sim.Transport (and the scale harness' listener
// seam), but unlike sim.Scheduler it has no single-event Step: the unit of
// progress is the window. Topology mutations (AddNode, AddListener,
// RemoveNode, Crash), Send with an unregistered From, InjectAt and the
// accounting accessors are barrier operations: they must be called between
// Run* calls, never from inside a handler. Handlers interact with the
// engine only through their Context (and, transitively, Transport.Send
// with their own From), which routes to their executing lane.
type Engine struct {
	opts     Options
	lanes    []*lane
	nodes    map[sim.NodeID]*pnode
	crashed  map[sim.NodeID]float64
	now      float64 // barrier time: start of the executing window
	gen      int64   // node-incarnation counter
	laneCeil int

	// extRNG serializes harness injections whose From is not a registered
	// node (chaos garbage, InjectAt): they draw from a dedicated stream so
	// they cannot perturb any lane's sequence.
	extRNG *rand.Rand
	extSeq int64

	// running guards the barrier-only API: true while a window executes.
	running atomic.Bool

	// highWater is the maximum total queued-event count observed at any
	// window barrier (the parallel engine's queue high-water mark).
	highWater int

	// worker pool (lazily started when Workers > 1)
	workCh    chan *lane
	phaseWG   sync.WaitGroup
	phaseFn   func(*lane)
	workersUp bool
	closed    bool
}

type pnode struct {
	h     sim.Handler
	owner sim.NodeID // non-⊥ for listeners: the pool node handling our traffic
	lane  int32      // executing lane (a listener's is its owner's)
	gen   int64
	next  float64 // next timeout (full nodes only)
}

const (
	evDeliver uint8 = iota
	evTimeout
)

// extLane is the srcLane stamp of events injected from outside any lane
// (harness sends with unregistered From, InjectAt). It orders such events
// before every lane's at equal times; any fixed rule would do.
const extLane int32 = -1

type pevent struct {
	t       float64
	srcSeq  int64
	srcLane int32
	kind    uint8
	node    sim.NodeID // timeout target
	gen     int64
	msg     sim.Message
}

// before totally orders events: by time, then by origin lane, then by the
// origin's per-lane sequence number. All three components are fixed when
// the event is created by its (deterministically scheduled) origin, so the
// order is independent of which worker executes what.
func (e pevent) before(o pevent) bool {
	if e.t != o.t {
		return e.t < o.t
	}
	if e.srcLane != o.srcLane {
		return e.srcLane < o.srcLane
	}
	return e.srcSeq < o.srcSeq
}

// pheap is a slice-backed binary min-heap (same layout trick as the serial
// scheduler's: no container/heap, no per-event boxing).
type pheap []pevent

func (h *pheap) push(e pevent) {
	s := append(*h, e)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !s[i].before(s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

func (h *pheap) pop() pevent {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = pevent{} // release the Body reference in the vacated slot
	s = s[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && s[c+1].before(s[c]) {
			c++
		}
		if !s[c].before(s[i]) {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	*h = s
	return top
}

// lane is one deterministic shard: a heap, a random stream, per-destination
// outboxes and the accounting for the nodes it executes. All lane state is
// touched only by the single worker executing the lane's window slice (or
// by the driver at a barrier), so none of it is locked.
type lane struct {
	e   *Engine
	idx int32
	rng *rand.Rand

	heap   pheap
	seq    int64
	outbox [][]pevent // per dst lane, filled during a window
	inbox  [][]pevent // per src lane, swapped in at the barrier
	now    float64    // time of the executing event
	ctx    laneCtx

	fault    sim.FaultFunc
	faultRNG *rand.Rand // dedicated stream for SetLaneFault filters

	inFlight   int
	delivered  int64
	dropped    int64
	overflow   int64
	byType     map[string]int64
	sentBy     map[sim.NodeID]int64
	receivedBy map[sim.NodeID]int64
}

// splitmix64 is the 64-bit finalizer used for lane hashing and per-node
// phases: deterministic, dependency-free, well mixed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// New creates an empty parallel deterministic simulation.
func New(opts Options) *Engine {
	if opts.Lanes <= 0 {
		opts.Lanes = 16
	}
	if opts.MaxDelay == 0 {
		opts.MaxDelay = 0.95
	}
	if opts.MinDelay == 0 {
		opts.MinDelay = 0.05
	}
	if opts.MinDelay <= 0 {
		panic("psim: MinDelay (the lookahead) must be positive")
	}
	if opts.DetectorGrace == 0 {
		opts.DetectorGrace = 2
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Workers > opts.Lanes {
		opts.Workers = opts.Lanes
	}
	e := &Engine{
		opts:    opts,
		nodes:   make(map[sim.NodeID]*pnode),
		crashed: make(map[sim.NodeID]float64),
		extRNG:  rand.New(rand.NewSource(int64(splitmix64(uint64(opts.Seed) ^ 0xe7f3a9c1)))),
	}
	if opts.MaxQueuedEvents > 0 {
		e.laneCeil = opts.MaxQueuedEvents / opts.Lanes
		if e.laneCeil < 1 {
			e.laneCeil = 1
		}
	}
	e.lanes = make([]*lane, opts.Lanes)
	for i := range e.lanes {
		l := &lane{
			e:          e,
			idx:        int32(i),
			rng:        rand.New(rand.NewSource(int64(splitmix64(uint64(opts.Seed) + uint64(i)*0x9e3779b97f4a7c15)))),
			faultRNG:   rand.New(rand.NewSource(int64(splitmix64(uint64(opts.Seed) ^ (uint64(i)*0xbf58476d1ce4e5b9 + 0x5bd1))))),
			outbox:     make([][]pevent, opts.Lanes),
			inbox:      make([][]pevent, opts.Lanes),
			byType:     make(map[string]int64),
			sentBy:     make(map[sim.NodeID]int64),
			receivedBy: make(map[sim.NodeID]int64),
		}
		l.ctx.l = l
		e.lanes[i] = l
	}
	return e
}

// laneOf is the deterministic NodeID → lane partition.
func (e *Engine) laneOf(id sim.NodeID) int32 {
	return int32(splitmix64(uint64(id)) % uint64(len(e.lanes)))
}

// phaseOf derives a node's timeout phase in [0, 1) from (Seed, NodeID) —
// pure, so registration order never shifts any random stream.
func (e *Engine) phaseOf(id sim.NodeID) float64 {
	u := splitmix64(uint64(e.opts.Seed)*0x2545f4914f6cdd1d ^ splitmix64(uint64(id)))
	return float64(u>>11) / (1 << 53)
}

func (e *Engine) assertBarrier(op string) {
	if e.running.Load() {
		panic("psim: " + op + " is a barrier operation; it must not be called from inside a handler")
	}
}

// AddNode registers a handler under the given ID on its hash lane and
// schedules its periodic Timeout action at a (seed, id)-deterministic phase
// within the current interval. Barrier operation.
func (e *Engine) AddNode(id sim.NodeID, h sim.Handler) {
	e.assertBarrier("AddNode")
	if id == sim.None {
		panic("psim: cannot add node with ID 0")
	}
	if _, dup := e.nodes[id]; dup {
		panic(fmt.Sprintf("psim: duplicate node %d", id))
	}
	e.gen++
	l := e.lanes[e.laneOf(id)]
	n := &pnode{h: h, lane: l.idx, gen: e.gen, next: e.now + e.phaseOf(id)}
	e.nodes[id] = n
	delete(e.crashed, id) // re-adding a crashed ID is a restart
	l.heap.push(pevent{t: n.next, kind: evTimeout, node: id, gen: n.gen, srcLane: l.idx, srcSeq: l.seq})
	l.seq++
}

// AddListener registers id as a virtual alias of an existing owner node
// (the scale harness' multiplexing seam, mirroring Scheduler.AddListener).
// The listener executes — and its sends draw randomness — on its owner's
// lane, so one pool and its thousands of virtual subscribers form one
// sequential strand. Barrier operation.
func (e *Engine) AddListener(id, owner sim.NodeID) {
	e.assertBarrier("AddListener")
	if id == sim.None {
		panic("psim: cannot add listener with ID 0")
	}
	if owner == sim.None {
		panic("psim: listener needs a non-⊥ owner")
	}
	if _, dup := e.nodes[id]; dup {
		panic(fmt.Sprintf("psim: duplicate node %d", id))
	}
	o, ok := e.nodes[owner]
	if !ok {
		panic(fmt.Sprintf("psim: listener %d names unknown owner %d", id, owner))
	}
	e.nodes[id] = &pnode{owner: owner, lane: o.lane, gen: -1}
	delete(e.crashed, id)
}

// RemoveNode gracefully deregisters a node; in-flight messages to it are
// dropped on delivery. Barrier operation.
func (e *Engine) RemoveNode(id sim.NodeID) {
	e.assertBarrier("RemoveNode")
	delete(e.nodes, id)
}

// Crash fails a node without warning: its actions stop, messages to it
// vanish, and the detector suspects it after the grace period. Barrier
// operation.
func (e *Engine) Crash(id sim.NodeID) {
	e.assertBarrier("Crash")
	if _, ok := e.nodes[id]; !ok {
		return
	}
	e.crashed[id] = e.now
	delete(e.nodes, id)
}

// Crashed reports whether the node has crashed.
func (e *Engine) Crashed(id sim.NodeID) bool {
	_, ok := e.crashed[id]
	return ok
}

// Suspects implements sim.Detector with the configured grace period,
// evaluated against the executing window's start time (identical for every
// worker count; within one lookahead width of the serial scheduler's
// event-time evaluation). Safe to call from handlers: the crash map and the
// window clock only change at barriers.
func (e *Engine) Suspects(id sim.NodeID) bool {
	t, ok := e.crashed[id]
	return ok && e.now >= t+e.opts.DetectorGrace
}

// Now returns the current virtual time in timeout intervals: at a barrier,
// the time the run has advanced to.
func (e *Engine) Now() float64 { return e.now }

// SetFault installs (or clears, with nil) one transport-layer fault filter
// shared by every lane. The filter runs concurrently on all lanes, so it
// must be safe for concurrent use and must not draw from a shared random
// source (that would make the schedule depend on worker interleaving) —
// stateless filters only. For randomized filters use SetLaneFault.
func (e *Engine) SetFault(f sim.FaultFunc) {
	e.assertBarrier("SetFault")
	for _, l := range e.lanes {
		l.fault = f
	}
}

var _ sim.FaultInjectable = (*Engine)(nil)

// SetLaneFault installs one filter per lane, built by factory from the
// lane index and a dedicated (Seed, lane)-derived random stream. Each
// filter runs only on its lane's worker, so it may use the stream freely;
// fault decisions replay bit-identically for any Workers value. A nil
// factory clears all filters.
func (e *Engine) SetLaneFault(factory func(lane int, rng *rand.Rand) sim.FaultFunc) {
	e.assertBarrier("SetLaneFault")
	for _, l := range e.lanes {
		if factory == nil {
			l.fault = nil
		} else {
			l.fault = factory(int(l.idx), l.faultRNG)
		}
	}
}

// Send routes a well-formed message toward its destination. Called from a
// handler (From == the executing node or one of its listeners) it runs on
// the executing lane and draws that lane's randomness; called from the
// driver at a barrier it runs on the From node's lane, or on the external
// stream when From is not a registered node.
func (e *Engine) Send(m sim.Message) {
	if m.To == sim.None {
		if n, ok := e.nodes[m.From]; ok {
			e.lanes[n.lane].dropped++
		} else {
			// External path: like externalSend, only legal at a barrier —
			// mid-window it would race with lane 0's worker over counters.
			e.assertBarrier("Send with unregistered From")
			e.lanes[0].dropped++
		}
		return
	}
	if n, ok := e.nodes[m.From]; ok {
		e.lanes[n.lane].send(m)
		return
	}
	e.externalSend(m)
}

// send performs accounting, fault filtering, delay drawing and routing for
// one message on the lane that owns the sender.
func (l *lane) send(m sim.Message) {
	l.sentBy[m.From]++
	l.byType[sim.TypeName(m.Body)]++
	copies, extra := 1, 0.0
	if l.fault != nil {
		switch l.fault(m) {
		case sim.FaultDrop:
			l.dropped++
			return
		case sim.FaultDup:
			copies = 2
		case sim.FaultDelay:
			extra = 1 + 3*l.rng.Float64()
		}
	}
	for i := 0; i < copies; i++ {
		// Draw the delay even when the ceiling sheds the copy, so enabling
		// MaxQueuedEvents never perturbs the surviving messages' sequence.
		delay := l.e.opts.MinDelay + l.rng.Float64()*(l.e.opts.MaxDelay-l.e.opts.MinDelay)
		// The ceiling is checked against the SENDING lane's heap even for
		// cross-lane events — a deliberate approximation; see the
		// Options.MaxQueuedEvents doc for the skew it admits.
		if l.e.laneCeil > 0 && len(l.heap) >= l.e.laneCeil {
			l.dropped++
			l.overflow++
			continue
		}
		ev := pevent{t: l.now + delay + extra, kind: evDeliver, msg: m, srcLane: l.idx, srcSeq: l.seq}
		l.seq++
		dst := l.e.destLane(m.To)
		if dst == l.idx {
			l.heap.push(ev)
			l.inFlight++
		} else {
			l.outbox[dst] = append(l.outbox[dst], ev)
		}
	}
}

// destLane resolves the lane that will deliver a message to id: the
// executor lane for registered nodes (a listener delivers on its owner's
// lane), the hash lane otherwise. Registration only changes at barriers,
// so the resolution is stable for every event created inside a window.
func (e *Engine) destLane(id sim.NodeID) int32 {
	if n, ok := e.nodes[id]; ok {
		return n.lane
	}
	return e.laneOf(id)
}

// externalSend queues a driver injection whose From is not a registered
// node. Barrier operation: such sends draw from the dedicated external
// stream (in driver call order) so they cannot perturb any lane.
func (e *Engine) externalSend(m sim.Message) {
	e.assertBarrier("Send with unregistered From")
	dst := e.lanes[e.destLane(m.To)]
	dst.sentBy[m.From]++
	dst.byType[sim.TypeName(m.Body)]++
	delay := e.opts.MinDelay + e.extRNG.Float64()*(e.opts.MaxDelay-e.opts.MinDelay)
	e.enqueueExternal(pevent{t: e.now + delay, kind: evDeliver, msg: m}, dst)
}

// InjectAt places an arbitrary (possibly corrupted) message into the queue
// at the given virtual time, clamped forward to the current barrier time
// (the parallel engine cannot execute into the past). Barrier operation.
func (e *Engine) InjectAt(t float64, m sim.Message) {
	e.assertBarrier("InjectAt")
	if t < e.now {
		t = e.now
	}
	e.enqueueExternal(pevent{t: t, kind: evDeliver, msg: m}, e.lanes[e.destLane(m.To)])
}

func (e *Engine) enqueueExternal(ev pevent, dst *lane) {
	ev.srcLane = extLane
	ev.srcSeq = e.extSeq
	e.extSeq++
	if e.laneCeil > 0 && len(dst.heap) >= e.laneCeil {
		dst.dropped++
		dst.overflow++
		return
	}
	dst.heap.push(ev)
	dst.inFlight++
}

// Close stops the worker pool. Idempotent; safe on an engine that never
// went parallel.
func (e *Engine) Close() {
	e.assertBarrier("Close")
	if e.closed {
		return
	}
	e.closed = true
	if e.workersUp {
		close(e.workCh)
		e.workersUp = false
	}
}

var _ sim.Transport = (*Engine)(nil)

// ---- window execution ----

// ensureWorkers lazily starts the Workers-1 >= 1 pool (the driver
// goroutine is worker zero in every phase).
func (e *Engine) ensureWorkers() {
	if e.workersUp || e.closed {
		return
	}
	e.workCh = make(chan *lane, len(e.lanes))
	for w := 0; w < e.opts.Workers-1; w++ {
		go func() {
			for l := range e.workCh {
				e.phaseFn(l)
				e.phaseWG.Done()
			}
		}()
	}
	e.workersUp = true
}

// runPhase executes fn once per lane: inline when Workers == 1 (the serial
// engine — no goroutines anywhere), else fanned out over the worker pool
// with the driver participating. Lane processing order is irrelevant by
// construction (lanes share no mutable state during a phase), which is
// exactly why the schedule cannot depend on Workers.
func (e *Engine) runPhase(fn func(*lane)) {
	if e.opts.Workers <= 1 {
		for _, l := range e.lanes {
			fn(l)
		}
		return
	}
	e.ensureWorkers()
	e.phaseFn = fn
	e.phaseWG.Add(len(e.lanes) - 1)
	for _, l := range e.lanes[1:] {
		e.workCh <- l
	}
	fn(e.lanes[0]) // the driver pulls its weight instead of spinning
	e.phaseWG.Wait()
	e.phaseFn = nil
}

// ingest merges the event slices every other lane buffered for this lane
// during the previous window into the heap. Arrival order is irrelevant:
// the heap orders by the (t, srcLane, srcSeq) stamp assigned at creation.
func (l *lane) ingest() {
	for src, buf := range l.inbox {
		for i := range buf {
			l.heap.push(buf[i])
			l.inFlight++
			buf[i] = pevent{} // release Body references
		}
		l.inbox[src] = buf[:0]
	}
}

// runWindow executes this lane's slice of the window: every queued event
// with t < wend (and t <= target). New same-lane events land in the heap
// directly; cross-lane events go to the outboxes for the barrier merge.
func (l *lane) runWindow(wend, target float64) {
	e := l.e
	for len(l.heap) > 0 {
		t := l.heap[0].t
		if t >= wend || t > target {
			break
		}
		ev := l.heap.pop()
		if ev.t > l.now {
			l.now = ev.t
		}
		switch ev.kind {
		case evDeliver:
			l.inFlight--
			n, ok := e.nodes[ev.msg.To]
			if !ok || n.lane != l.idx {
				l.dropped++ // crashed, removed, or re-registered elsewhere
				continue
			}
			h := n.h
			if n.owner != sim.None {
				o, up := e.nodes[n.owner]
				if !up {
					l.dropped++ // owner pool crashed: its listeners fail with it
					continue
				}
				h = o.h
			}
			l.delivered++
			l.receivedBy[ev.msg.To]++
			l.ctx.id = ev.msg.To
			h.OnMessage(&l.ctx, ev.msg)
		case evTimeout:
			n, ok := e.nodes[ev.node]
			if !ok || n.gen != ev.gen {
				continue // crashed/removed, or a stale pre-restart chain
			}
			l.ctx.id = ev.node
			n.h.OnTimeout(&l.ctx)
			n.next += 1
			l.heap.push(pevent{t: n.next, kind: evTimeout, node: ev.node, gen: n.gen, srcLane: l.idx, srcSeq: l.seq})
			l.seq++
		}
	}
}

// swapOutboxes hands every lane's outbox slices to their destination
// lanes' inboxes (slice-header swaps only; the buffers are recycled in the
// opposite direction each window).
func (e *Engine) swapOutboxes() {
	for _, src := range e.lanes {
		for d := range src.outbox {
			if len(src.outbox[d]) == 0 {
				continue
			}
			dst := e.lanes[d]
			src.outbox[d], dst.inbox[src.idx] = dst.inbox[src.idx][:0], src.outbox[d]
		}
	}
}

// RunUntil advances virtual time to target, executing every event with
// t <= target, window by window.
func (e *Engine) RunUntil(target float64) {
	e.assertBarrier("RunUntil")
	if e.closed {
		panic("psim: RunUntil on a closed engine")
	}
	W := e.opts.MinDelay
	for {
		// Merge the cross-lane events the previous window buffered BEFORE
		// choosing the next window: an inbox event can be older than every
		// heap min, and both window selection and loop termination must see
		// it. (After this phase outboxes and inboxes are empty, so heaps
		// are the complete picture.)
		e.running.Store(true)
		e.runPhase(func(l *lane) { l.ingest() })
		e.running.Store(false)
		// Earliest pending event across all lanes.
		min := math.Inf(1)
		for _, l := range e.lanes {
			if len(l.heap) > 0 && l.heap[0].t < min {
				min = l.heap[0].t
			}
		}
		if min > target {
			break
		}
		// The lookahead window containing the earliest event, aligned to
		// the absolute W grid. The guard keeps wstart <= min under
		// floating-point rounding so wend <= min+W: no event created
		// inside the window (at >= its creator's time + MinDelay) can
		// land inside the window.
		wstart := math.Floor(min/W) * W
		if wstart > min {
			wstart -= W
		}
		wend := wstart + W
		if e.now < wstart {
			e.now = wstart
		}
		total := 0
		for _, l := range e.lanes {
			total += len(l.heap)
		}
		if total > e.highWater {
			e.highWater = total
		}
		e.running.Store(true)
		e.runPhase(func(l *lane) { l.runWindow(wend, target) })
		e.running.Store(false)
		e.swapOutboxes()
	}
	if e.now < target {
		e.now = target
	}
}

// RunRounds advances by k timeout intervals.
func (e *Engine) RunRounds(k int) { e.RunUntil(e.now + float64(k)) }

// RunRoundsUntil advances round by round until pred returns true or
// maxRounds elapsed, returning the number of whole rounds executed and
// whether pred held. pred runs at round barriers.
func (e *Engine) RunRoundsUntil(maxRounds int, pred func() bool) (rounds int, ok bool) {
	if pred() {
		return 0, true
	}
	for r := 1; r <= maxRounds; r++ {
		e.RunRounds(1)
		if pred() {
			return r, true
		}
	}
	return maxRounds, false
}

// ---- accounting (barrier operations: they read every lane) ----

// Delivered returns the total number of delivered messages.
func (e *Engine) Delivered() int64 {
	var n int64
	for _, l := range e.lanes {
		n += l.delivered
	}
	return n
}

// Dropped returns messages dropped (sent to ⊥, crashed or removed nodes,
// fault drops, ceiling sheds).
func (e *Engine) Dropped() int64 {
	var n int64
	for _, l := range e.lanes {
		n += l.dropped
	}
	return n
}

// OverflowDropped returns how many messages the MaxQueuedEvents ceiling
// shed (a subset of Dropped).
func (e *Engine) OverflowDropped() int64 {
	var n int64
	for _, l := range e.lanes {
		n += l.overflow
	}
	return n
}

// InFlight returns the number of queued message deliveries.
func (e *Engine) InFlight() int {
	n := 0
	for _, l := range e.lanes {
		n += l.inFlight
	}
	return n
}

// QueueLen returns the total number of queued events across all lanes.
func (e *Engine) QueueLen() int {
	n := 0
	for _, l := range e.lanes {
		n += len(l.heap)
	}
	return n
}

// QueueHighWaterBytes returns the queue's high-water footprint: the
// maximum total queued-event count observed at any window barrier, at the
// static event size. Deterministic for a given schedule identity.
func (e *Engine) QueueHighWaterBytes() uint64 {
	return uint64(e.highWater) * uint64(unsafe.Sizeof(pevent{}))
}

// QueueMemoryBytes estimates the resident footprint of all lane heaps
// (slot capacity at the static event size, as on the serial scheduler).
func (e *Engine) QueueMemoryBytes() uint64 {
	var n uint64
	for _, l := range e.lanes {
		n += uint64(cap(l.heap)) * uint64(unsafe.Sizeof(pevent{}))
	}
	return n
}

// SentBy returns the number of messages node id has sent so far.
func (e *Engine) SentBy(id sim.NodeID) int64 {
	var n int64
	for _, l := range e.lanes {
		n += l.sentBy[id]
	}
	return n
}

// ReceivedBy returns the number of messages delivered to node id so far.
func (e *Engine) ReceivedBy(id sim.NodeID) int64 {
	var n int64
	for _, l := range e.lanes {
		n += l.receivedBy[id]
	}
	return n
}

// CountByType returns the number of sends per message body type name.
func (e *Engine) CountByType(typeName string) int64 {
	var n int64
	for _, l := range e.lanes {
		n += l.byType[typeName]
	}
	return n
}

// TypeNames returns all message body type names seen, sorted.
func (e *Engine) TypeNames() []string {
	seen := make(map[string]struct{})
	for _, l := range e.lanes {
		for k := range l.byType {
			seen[k] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NodeIDs returns the IDs of all live registered nodes, sorted.
func (e *Engine) NodeIDs() []sim.NodeID {
	out := make([]sim.NodeID, 0, len(e.nodes))
	for id := range e.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Handler returns the handler registered under id (a listener resolves to
// its owner's), or nil.
func (e *Engine) Handler(id sim.NodeID) sim.Handler {
	n, ok := e.nodes[id]
	if !ok {
		return nil
	}
	if n.owner != sim.None {
		if o, up := e.nodes[n.owner]; up {
			return o.h
		}
		return nil
	}
	return n.h
}

// Workers reports the configured physical parallelism (after clamping).
func (e *Engine) Workers() int { return e.opts.Workers }

// Lanes reports the configured shard count.
func (e *Engine) Lanes() int { return len(e.lanes) }

// laneCtx binds a lane to the currently executing node. One instance per
// lane is reused across all its events (handlers must not retain a
// Context), keeping the delivery path free of per-event allocations.
type laneCtx struct {
	l  *lane
	id sim.NodeID
}

func (c *laneCtx) Self() sim.NodeID { return c.id }
func (c *laneCtx) Send(to sim.NodeID, topic sim.Topic, body any) {
	c.l.send(sim.Message{To: to, From: c.id, Topic: topic, Body: body})
}
func (c *laneCtx) Rand() *rand.Rand { return c.l.rng }
func (c *laneCtx) Now() float64     { return c.l.now }
