package supervisor

import (
	"math/rand"
	"testing"

	"sspubsub/internal/label"
	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
	"sspubsub/internal/simtest"
)

// replicaPair builds a two-supervisor plane at replication factor 1 and
// returns the replica-holding side (supervisor 2); supervisor 1 plays the
// owner in the tests, which drive messages into 2 directly.
func replicaSide(t *testing.T) *Supervisor {
	t.Helper()
	ids := []sim.NodeID{1, 2}
	s := New(2, fakeDetector{})
	s.JoinPlane(ids)
	s.SetReplicationFactor(1)
	return s
}

func delta(puts []proto.ReplicaEntry, dels []label.Label) sim.Message {
	return sim.Message{To: 2, From: 1, Topic: tp, Body: proto.ReplicaDelta{Put: puts, Del: dels}}
}

// TestReplicaDeltaIdempotent: applying the same delta batch twice leaves
// the replica's recomputed root digest (and entry count) unchanged — the
// property that makes the fire-and-forget stream safe under duplication.
func TestReplicaDeltaIdempotent(t *testing.T) {
	s := replicaSide(t)
	c := simtest.NewCtx(2)
	puts := []proto.ReplicaEntry{
		{L: label.FromIndex(0), V: 10},
		{L: label.FromIndex(1), V: 11},
		{L: label.FromIndex(2), V: 12},
	}
	d := delta(puts, []label.Label{label.FromIndex(5)})
	s.OnMessage(c, d)
	e1, h1, n1, ok := s.HeldReplicaDigest(tp)
	if !ok || n1 != 3 {
		t.Fatalf("first delta: held=%v count=%d", ok, n1)
	}
	s.OnMessage(c, d) // exact duplicate
	e2, h2, n2, _ := s.HeldReplicaDigest(tp)
	if e1 != e2 || h1 != h2 || n1 != n2 {
		t.Fatalf("duplicate delta changed the replica: (%d,%x,%d) vs (%d,%x,%d)", e1, h1, n1, e2, h2, n2)
	}
	// The incrementally maintained digest must agree with the recompute.
	s.mu.Lock()
	rep := s.replicas[tp]
	if rep.hash != digestOf(rep.db) {
		t.Errorf("incremental digest %x diverged from content digest %x", rep.hash, digestOf(rep.db))
	}
	s.mu.Unlock()
}

// TestReplicaSyncIdempotent: replaying a completed full-sync round
// rebuilds the identical replica — chunk duplication and round replays are
// no-ops on the root digest.
func TestReplicaSyncIdempotent(t *testing.T) {
	s := replicaSide(t)
	c := simtest.NewCtx(2)
	round := []sim.Message{
		{To: 2, From: 1, Topic: tp, Body: proto.ReplicaSync{
			Epoch: 1, Round: 1, Seq: 0, Chunks: 2,
			Entries: []proto.ReplicaEntry{{L: label.FromIndex(0), V: 10}, {L: label.FromIndex(1), V: 11}},
		}},
		{To: 2, From: 1, Topic: tp, Body: proto.ReplicaSync{
			Epoch: 1, Round: 1, Seq: 1, Chunks: 2,
			Entries: []proto.ReplicaEntry{{L: label.FromIndex(2), V: 12}},
		}},
	}
	for _, m := range round {
		s.OnMessage(c, m)
	}
	e1, h1, n1, ok := s.HeldReplicaDigest(tp)
	if !ok || n1 != 3 || e1 != 1 {
		t.Fatalf("sync round did not install: held=%v count=%d epoch=%d", ok, n1, e1)
	}
	// Scramble, then replay the same round: it must restore the state.
	s.CorruptReplica(tp, rand.New(rand.NewSource(4)))
	for _, m := range round {
		s.OnMessage(c, m)
	}
	e2, h2, n2, _ := s.HeldReplicaDigest(tp)
	if e1 != e2 || h1 != h2 || n1 != n2 {
		t.Fatalf("replayed sync diverged: (%d,%x,%d) vs (%d,%x,%d)", e1, h1, n1, e2, h2, n2)
	}
	// And a third, unprovoked replay is a pure no-op.
	for _, m := range round {
		s.OnMessage(c, m)
	}
	if _, h3, _, _ := s.HeldReplicaDigest(tp); h3 != h1 {
		t.Fatalf("idle replay changed the digest: %x vs %x", h3, h1)
	}
}

// TestReplicaDeltaOldEpochDropped: a deposed owner's stream (older era)
// must not perturb the replica.
func TestReplicaDeltaOldEpochDropped(t *testing.T) {
	s := replicaSide(t)
	c := simtest.NewCtx(2)
	s.OnMessage(c, sim.Message{To: 2, From: 1, Topic: tp, Body: proto.ReplicaDelta{
		Epoch: 3, Put: []proto.ReplicaEntry{{L: label.FromIndex(0), V: 10}},
	}})
	_, h1, n1, _ := s.HeldReplicaDigest(tp)
	s.OnMessage(c, sim.Message{To: 2, From: 1, Topic: tp, Body: proto.ReplicaDelta{
		Epoch: 2, Put: []proto.ReplicaEntry{{L: label.FromIndex(0), V: 99}},
	}})
	e2, h2, n2, _ := s.HeldReplicaDigest(tp)
	if e2 != 3 || h2 != h1 || n2 != n1 {
		t.Fatalf("old-era delta perturbed the replica: epoch=%d", e2)
	}
}

// TestGraceCeilingCapsExtension is the satellite-1 regression: a sustained
// in-grace Reregister stream re-arms the rebuild grace each tick, but the
// per-era budget (graceCeiling) must still force the grace window shut —
// before the cap, such a stream (chaos churn produces exactly it) deferred
// relabelling forever.
func TestGraceCeilingCapsExtension(t *testing.T) {
	s := New(1, fakeDetector{})
	s.JoinPlane([]sim.NodeID{1})
	c := simtest.NewCtx(1)
	for i := sim.NodeID(0); i < 4; i++ {
		sub(t, s, c, 10+i)
	}
	// Open an adoption-style grace window on the hosted database.
	s.mu.Lock()
	db := s.topics[tp]
	db.grace = rebuildGrace
	db.graceCeil = graceCeiling
	s.mu.Unlock()

	graceAt := func() int {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.topics[tp].grace
	}
	// Each tick a new survivor re-reports with a fresh, untaken label —
	// the exact stream that used to re-arm the grace indefinitely.
	closed := -1
	for tick := 0; tick < graceCeiling+2*rebuildGrace; tick++ {
		s.OnMessage(c, sim.Message{To: 1, From: 100 + sim.NodeID(tick), Topic: tp, Body: proto.Reregister{
			V:     100 + sim.NodeID(tick),
			Label: label.FromIndex(uint64(10 + tick)),
		}})
		s.OnTimeout(c)
		c.Take()
		if graceAt() == 0 {
			closed = tick
			break
		}
	}
	if closed < 0 {
		t.Fatalf("grace window never closed under a sustained Reregister stream (%d ticks)", graceCeiling+2*rebuildGrace)
	}
	// The stream must genuinely extend the window (the re-arm exists) …
	if closed < rebuildGrace {
		t.Errorf("grace closed after %d ticks — the Reregister stream never extended it (rebuildGrace=%d)", closed, rebuildGrace)
	}
	// … but the budget must bound the total extension.
	if closed >= graceCeiling+rebuildGrace {
		t.Errorf("grace stayed open %d ticks — past the per-era budget %d", closed, graceCeiling)
	}
}

// TestWarmAdoptionUsesShortGrace: a warm adoption seeds the database from
// the replica and opens only the short straggler grace with a reduced
// budget — not the full rebuild window.
func TestWarmAdoptionUsesShortGrace(t *testing.T) {
	det := fakeDetector{}
	ids := []sim.NodeID{1, 2}
	s := New(2, det)
	s.JoinPlane(ids)
	s.SetReplicationFactor(1)
	c := simtest.NewCtx(2)

	// Install a warm replica as the owner's stream would.
	s.OnMessage(c, sim.Message{To: 2, From: 1, Topic: tp, Body: proto.ReplicaDelta{
		Epoch: 0,
		Put: []proto.ReplicaEntry{
			{L: label.FromIndex(0), V: 10},
			{L: label.FromIndex(1), V: 11},
			{L: label.FromIndex(2), V: 12},
		},
	}})

	// Gossip tells supervisor 2 the topic exists (in the running system the
	// plane heartbeat does this every gossip period).
	s.OnMessage(c, sim.Message{To: 2, From: 1, Body: proto.PlaneGossip{
		Entries: []proto.TopicEpoch{{Topic: tp, Epoch: 0}},
	}})

	// The owner dies; the plane detects it and supervisor 2 adopts.
	det[1] = true
	for i := 0; i < 4 && !s.Hosts(tp); i++ {
		s.OnTimeout(c)
	}
	if !s.Hosts(tp) {
		t.Fatal("successor never adopted the topic")
	}
	if got := s.N(tp); got != 3 {
		t.Fatalf("adopted database has %d entries, want 3 (warm seed)", got)
	}
	s.mu.Lock()
	grace, ceil := s.topics[tp].grace, s.topics[tp].graceCeil
	s.mu.Unlock()
	if grace > warmGrace {
		t.Errorf("warm adoption opened grace %d, want ≤ %d", grace, warmGrace)
	}
	if ceil > rebuildGrace {
		t.Errorf("warm adoption budget %d, want ≤ %d", ceil, rebuildGrace)
	}
	// The announcement burst must address exactly the recorded subscribers.
	want := map[sim.NodeID]bool{10: true, 11: true, 12: true}
	for _, m := range c.Take() {
		if oa, ok := m.Body.(proto.OwnerAnnounce); ok {
			if oa.Owner != 2 {
				t.Errorf("announce names owner %d, want 2", oa.Owner)
			}
			delete(want, m.To)
		}
	}
	if len(want) != 0 {
		t.Errorf("recorded subscribers never announced to: %v", want)
	}
}
