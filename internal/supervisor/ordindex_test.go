package supervisor

import (
	"math/rand"
	"sort"
	"testing"

	"sspubsub/internal/label"
	"sspubsub/internal/sim"
)

// refIndex is the O(n log n) oracle: a plain sorted slice.
type refIndex struct {
	entries []entry
}

func (r *refIndex) sortEntries() {
	sort.Slice(r.entries, func(i, j int) bool {
		return cmpLabel(r.entries[i].l, r.entries[j].l) < 0
	})
}

func (r *refIndex) insert(l label.Label, id sim.NodeID) {
	for i := range r.entries {
		if r.entries[i].l == l {
			r.entries[i].id = id
			return
		}
	}
	r.entries = append(r.entries, entry{l, id})
	r.sortEntries()
}

func (r *refIndex) remove(l label.Label) {
	for i := range r.entries {
		if r.entries[i].l == l {
			r.entries = append(r.entries[:i], r.entries[i+1:]...)
			return
		}
	}
}

func (r *refIndex) find(l label.Label) int {
	return sort.Search(len(r.entries), func(i int) bool {
		return cmpLabel(r.entries[i].l, l) >= 0
	})
}

// TestOrdIndexMatchesSortedSlice drives random insert/delete traffic and
// cross-checks every query against the sorted-slice oracle.
func TestOrdIndexMatchesSortedSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var idx ordIndex
	ref := &refIndex{}

	labels := make([]label.Label, 200)
	for i := range labels {
		if rng.Intn(4) == 0 {
			// Arbitrary (possibly malformed) labels, like corrupted states.
			labels[i] = label.Label{Bits: rng.Uint64() & 0xffff, Len: uint8(1 + rng.Intn(16))}
		} else {
			labels[i] = label.FromIndex(uint64(rng.Intn(300)))
		}
	}

	check := func(step int) {
		t.Helper()
		if idx.len() != len(ref.entries) {
			t.Fatalf("step %d: len %d, want %d", step, idx.len(), len(ref.entries))
		}
		var walked []entry
		idx.walk(func(l label.Label, id sim.NodeID) { walked = append(walked, entry{l, id}) })
		for i, e := range walked {
			if e != ref.entries[i] {
				t.Fatalf("step %d: walk[%d] = %v, want %v", step, i, e, ref.entries[i])
			}
		}
		for k := 0; k < len(ref.entries); k++ {
			n := idx.kth(k)
			if n == nil || n.l != ref.entries[k].l || n.id != ref.entries[k].id {
				t.Fatalf("step %d: kth(%d) mismatch", step, k)
			}
		}
		if idx.kth(len(ref.entries)) != nil || idx.kth(-1) != nil {
			t.Fatalf("step %d: kth out of range not nil", step)
		}
		// Probe pred/succ/ceil/get at both present and absent labels.
		for trial := 0; trial < 30; trial++ {
			probe := labels[rng.Intn(len(labels))]
			i := ref.find(probe)
			present := i < len(ref.entries) && ref.entries[i].l == probe
			if g := idx.get(probe); (g != nil) != present {
				t.Fatalf("step %d: get(%v) present=%v, want %v", step, probe, g != nil, present)
			}
			p := idx.pred(probe)
			if i == 0 {
				if p != nil {
					t.Fatalf("step %d: pred(%v) = %v, want nil", step, probe, p.l)
				}
			} else if p == nil || p.l != ref.entries[i-1].l {
				t.Fatalf("step %d: pred(%v) mismatch", step, probe)
			}
			si := i
			if present {
				si = i + 1
			}
			sn := idx.succ(probe)
			if si >= len(ref.entries) {
				if sn != nil {
					t.Fatalf("step %d: succ(%v) = %v, want nil", step, probe, sn.l)
				}
			} else if sn == nil || sn.l != ref.entries[si].l {
				t.Fatalf("step %d: succ(%v) mismatch", step, probe)
			}
			c := idx.ceil(probe)
			if i >= len(ref.entries) {
				if c != nil {
					t.Fatalf("step %d: ceil(%v) = %v, want nil", step, probe, c.l)
				}
			} else if c == nil || c.l != ref.entries[i].l {
				t.Fatalf("step %d: ceil(%v) mismatch", step, probe)
			}
		}
		if len(ref.entries) > 0 {
			if idx.min().l != ref.entries[0].l || idx.max().l != ref.entries[len(ref.entries)-1].l {
				t.Fatalf("step %d: min/max mismatch", step)
			}
		} else if idx.min() != nil || idx.max() != nil {
			t.Fatalf("step %d: min/max of empty not nil", step)
		}
	}

	for step := 0; step < 2000; step++ {
		l := labels[rng.Intn(len(labels))]
		switch rng.Intn(3) {
		case 0, 1:
			id := sim.NodeID(1 + rng.Intn(50))
			idx.insert(l, id)
			ref.insert(l, id)
		default:
			idx.remove(l)
			ref.remove(l)
		}
		if step%50 == 0 || step > 1950 {
			check(step)
		}
	}
}

// TestOrdIndexShapeIsInsertionOrderIndependent verifies the determinism
// property the sim replay relies on: the treap shape is a pure function of
// the key set, so any insertion order yields an identical tree.
func TestOrdIndexShapeIsInsertionOrderIndependent(t *testing.T) {
	keys := make([]label.Label, 500)
	for i := range keys {
		keys[i] = label.FromIndex(uint64(i))
	}
	build := func(perm []int) *onode {
		var idx ordIndex
		for _, i := range perm {
			idx.insert(keys[i], sim.NodeID(i+1))
		}
		return idx.root
	}
	var sameShape func(a, b *onode) bool
	sameShape = func(a, b *onode) bool {
		if a == nil || b == nil {
			return a == b
		}
		return a.l == b.l && a.id == b.id && a.size == b.size &&
			sameShape(a.left, b.left) && sameShape(a.right, b.right)
	}
	fwd := make([]int, len(keys))
	rev := make([]int, len(keys))
	for i := range fwd {
		fwd[i] = i
		rev[i] = len(keys) - 1 - i
	}
	shuffled := rand.New(rand.NewSource(7)).Perm(len(keys))
	base := build(fwd)
	if !sameShape(base, build(rev)) || !sameShape(base, build(shuffled)) {
		t.Fatal("treap shape depends on insertion order")
	}
}
