package supervisor

import (
	"testing"

	"sspubsub/internal/label"
	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
	"sspubsub/internal/simtest"
)

const tp sim.Topic = 1

func sub(t *testing.T, s *Supervisor, c *simtest.Ctx, v sim.NodeID) proto.SetData {
	t.Helper()
	s.OnMessage(c, sim.Message{To: 1, From: v, Topic: tp, Body: proto.Subscribe{V: v}})
	msgs := c.Take()
	if len(msgs) != 1 {
		t.Fatalf("subscribe(%d): %d messages, want 1 (Theorem 7)", v, len(msgs))
	}
	if msgs[0].To != v {
		t.Fatalf("subscribe(%d): config sent to %d", v, msgs[0].To)
	}
	d, ok := msgs[0].Body.(proto.SetData)
	if !ok {
		t.Fatalf("subscribe(%d): body %T", v, msgs[0].Body)
	}
	return d
}

func TestSubscribeAssignsLabelsInOrder(t *testing.T) {
	s := New(1, nil)
	c := simtest.NewCtx(1)
	for i := sim.NodeID(0); i < 8; i++ {
		d := sub(t, s, c, 10+i)
		if want := label.FromIndex(uint64(i)); d.Label != want {
			t.Errorf("subscriber %d got label %s, want %s", i, d.Label, want)
		}
	}
	if s.N(tp) != 8 {
		t.Errorf("N = %d", s.N(tp))
	}
}

func TestSubscribeIdempotent(t *testing.T) {
	s := New(1, nil)
	c := simtest.NewCtx(1)
	d1 := sub(t, s, c, 42)
	d2 := sub(t, s, c, 42) // second subscribe: just re-sends the config
	if d1.Label != d2.Label || s.N(tp) != 1 {
		t.Errorf("duplicate subscribe changed the database: %v vs %v, n=%d", d1, d2, s.N(tp))
	}
}

func TestConfigurationNeighborsWrap(t *testing.T) {
	s := New(1, nil)
	c := simtest.NewCtx(1)
	for i := sim.NodeID(0); i < 4; i++ { // labels 0, 1, 01, 11 → r: 0, 1/2, 1/4, 3/4
		sub(t, s, c, 10+i)
	}
	// Node with label 0 (id 10): pred wraps to 3/4 (id 13), succ 1/4 (id 12).
	s.OnMessage(c, sim.Message{From: 10, Topic: tp, Body: proto.GetConfiguration{V: 10}})
	d := c.Take()[0].Body.(proto.SetData)
	if d.Pred.Ref != 13 || d.Pred.L != label.MustParse("11") {
		t.Errorf("pred = %v, want 11@13", d.Pred)
	}
	if d.Succ.Ref != 12 || d.Succ.L != label.MustParse("01") {
		t.Errorf("succ = %v, want 01@12", d.Succ)
	}
}

func TestGetConfigurationUnknown(t *testing.T) {
	s := New(1, nil)
	c := simtest.NewCtx(1)
	s.OnMessage(c, sim.Message{From: 99, Topic: tp, Body: proto.GetConfiguration{V: 99}})
	msgs := c.Take()
	if len(msgs) != 1 {
		t.Fatalf("%d messages", len(msgs))
	}
	d := msgs[0].Body.(proto.SetData)
	if !d.Label.IsBottom() || !d.Pred.IsBottom() || !d.Succ.IsBottom() {
		t.Errorf("unknown node must get the all-⊥ configuration, got %+v", d)
	}
}

func TestUnsubscribeMovesLastLabel(t *testing.T) {
	s := New(1, nil)
	c := simtest.NewCtx(1)
	for i := sim.NodeID(0); i < 5; i++ {
		sub(t, s, c, 10+i)
	}
	// Remove the node with label l(1) (id 11). The l(4) holder (id 14)
	// must take over label l(1).
	s.OnMessage(c, sim.Message{From: 11, Topic: tp, Body: proto.Unsubscribe{V: 11}})
	msgs := c.Take()
	if len(msgs) != 2 {
		t.Fatalf("unsubscribe sent %d messages, want 2 (Theorem 7)", len(msgs))
	}
	var toLeaver, toMoved *sim.Message
	for i := range msgs {
		switch msgs[i].To {
		case 11:
			toLeaver = &msgs[i]
		case 14:
			toMoved = &msgs[i]
		}
	}
	if toLeaver == nil || !toLeaver.Body.(proto.SetData).Label.IsBottom() {
		t.Error("leaver did not get the all-⊥ permission")
	}
	if toMoved == nil || toMoved.Body.(proto.SetData).Label != label.FromIndex(1) {
		t.Error("l(4) holder was not moved to l(1)")
	}
	if s.N(tp) != 4 || s.Corrupted(tp) {
		t.Errorf("db wrong after unsubscribe: n=%d corrupted=%v", s.N(tp), s.Corrupted(tp))
	}
	if s.LabelOf(tp, 14) != label.FromIndex(1) {
		t.Errorf("id 14 has label %s", s.LabelOf(tp, 14))
	}
}

func TestUnsubscribeLastLabelHolder(t *testing.T) {
	s := New(1, nil)
	c := simtest.NewCtx(1)
	for i := sim.NodeID(0); i < 3; i++ {
		sub(t, s, c, 10+i)
	}
	s.OnMessage(c, sim.Message{From: 12, Topic: tp, Body: proto.Unsubscribe{V: 12}})
	msgs := c.Take()
	if len(msgs) != 1 || msgs[0].To != 12 {
		t.Fatalf("unsubscribing the last label holder should send 1 message, got %d", len(msgs))
	}
	if s.N(tp) != 2 || s.Corrupted(tp) {
		t.Errorf("db: n=%d corrupted=%v", s.N(tp), s.Corrupted(tp))
	}
}

func TestUnsubscribeUnknownNode(t *testing.T) {
	s := New(1, nil)
	c := simtest.NewCtx(1)
	sub(t, s, c, 10)
	s.OnMessage(c, sim.Message{From: 55, Topic: tp, Body: proto.Unsubscribe{V: 55}})
	msgs := c.Take()
	if len(msgs) != 1 || !msgs[0].Body.(proto.SetData).Label.IsBottom() {
		t.Error("unknown leaver must still get the ⊥ permission so it can stop")
	}
	if s.N(tp) != 1 {
		t.Error("database must be unchanged")
	}
}

// The four database corruption cases of Section 3.1 are all repaired by
// the local actions (Lemma 9).
func TestCheckLabelsRepairsCorruption(t *testing.T) {
	s := New(1, nil)
	c := simtest.NewCtx(1)
	for i := sim.NodeID(0); i < 6; i++ {
		sub(t, s, c, 10+i)
	}
	// (i) tuple with ⊥ subscriber.
	s.InjectRaw(tp, label.FromIndex(20), sim.None)
	// (ii) duplicate subscriber under a second label.
	s.InjectRaw(tp, label.FromIndex(9), 12)
	// (iii) missing label.
	s.DeleteLabel(tp, label.FromIndex(2))
	// (iv) out-of-range label.
	s.InjectRaw(tp, label.FromIndex(33), 77)
	if !s.Corrupted(tp) {
		t.Fatal("injection failed")
	}
	s.RepairNow(tp)
	// CheckMultipleCopies runs on the next request touching node 12.
	s.OnMessage(c, sim.Message{From: 12, Topic: tp, Body: proto.GetConfiguration{V: 12}})
	s.RepairNow(tp)
	if s.Corrupted(tp) {
		t.Fatalf("db still corrupted: %v", s.Snapshot(tp))
	}
	// All original subscribers plus 77 must be present exactly once.
	snap := s.Snapshot(tp)
	seen := map[sim.NodeID]int{}
	for _, v := range snap {
		seen[v]++
	}
	for i := sim.NodeID(0); i < 6; i++ {
		if seen[10+i] != 1 {
			t.Errorf("subscriber %d appears %d times", 10+i, seen[10+i])
		}
	}
}

// A crashed subscriber is culled by the failure detector during Timeout
// and the database re-compacts (Section 3.3).
type fakeDetector map[sim.NodeID]bool

func (f fakeDetector) Suspects(id sim.NodeID) bool { return f[id] }

func TestTimeoutCullsCrashed(t *testing.T) {
	det := fakeDetector{}
	s := New(1, det)
	c := simtest.NewCtx(1)
	for i := sim.NodeID(0); i < 5; i++ {
		sub(t, s, c, 10+i)
	}
	det[12] = true
	for i := 0; i < 20; i++ {
		s.OnTimeout(c)
	}
	c.Take()
	if s.N(tp) != 4 {
		t.Fatalf("crashed node not culled: n=%d", s.N(tp))
	}
	if s.Corrupted(tp) {
		t.Fatalf("db corrupted after cull: %v", s.Snapshot(tp))
	}
	if s.LabelOf(tp, 12) != label.Bottom {
		t.Error("crashed node still recorded")
	}
}

// Timeout sends exactly one configuration per topic per call (the paper's
// round-robin refresh; supervisor maintenance is O(#topics) messages).
func TestTimeoutRoundRobin(t *testing.T) {
	s := New(1, nil)
	c := simtest.NewCtx(1)
	for i := sim.NodeID(0); i < 4; i++ {
		sub(t, s, c, 10+i)
	}
	got := map[sim.NodeID]int{}
	for i := 0; i < 8; i++ {
		s.OnTimeout(c)
		msgs := c.Take()
		if len(msgs) != 1 {
			t.Fatalf("timeout %d sent %d messages, want 1", i, len(msgs))
		}
		got[msgs[0].To]++
	}
	for i := sim.NodeID(0); i < 4; i++ {
		if got[10+i] != 2 {
			t.Errorf("node %d refreshed %d times in 8 timeouts, want 2", 10+i, got[10+i])
		}
	}
}

func TestTimeoutEmptyTopic(t *testing.T) {
	s := New(1, nil)
	c := simtest.NewCtx(1)
	s.OnMessage(c, sim.Message{From: 5, Topic: tp, Body: proto.GetConfiguration{V: 5}})
	c.Take()
	s.OnTimeout(c) // must not panic or send with an empty database
	if msgs := c.Take(); len(msgs) != 0 {
		t.Errorf("empty topic produced %d messages", len(msgs))
	}
}

func TestMultiTopicIndependence(t *testing.T) {
	s := New(1, nil)
	c := simtest.NewCtx(1)
	s.OnMessage(c, sim.Message{From: 10, Topic: 1, Body: proto.Subscribe{V: 10}})
	s.OnMessage(c, sim.Message{From: 10, Topic: 2, Body: proto.Subscribe{V: 10}})
	s.OnMessage(c, sim.Message{From: 11, Topic: 2, Body: proto.Subscribe{V: 11}})
	c.Take()
	if s.N(1) != 1 || s.N(2) != 2 {
		t.Errorf("topic sizes %d, %d", s.N(1), s.N(2))
	}
	if got := s.Topics(); len(got) != 2 {
		t.Errorf("Topics() = %v", got)
	}
	// One config per topic per timeout.
	s.OnTimeout(c)
	if msgs := c.Take(); len(msgs) != 2 {
		t.Errorf("timeout sent %d messages for 2 topics", len(msgs))
	}
}

// The failure-detector screen must sweep the whole database in
// ~n/CullPerTimeout Timeouts. Regression test for the shared-cursor bug
// the scale harness exposed: the screen window used to start at the
// config-refresh cursor, which advances one entry per Timeout, so
// consecutive windows overlapped in all but one entry and the sweep rate
// was one entry per interval no matter the budget — culling a spread-out
// crash burst took O(n) rounds even with CullPerTimeout ≫ 1.
func TestCullSweepRateScalesWithBudget(t *testing.T) {
	const n, budget = 256, 16
	det := fakeDetector{}
	s := New(1, det)
	s.CullPerTimeout = budget
	c := simtest.NewCtx(1)
	for i := sim.NodeID(0); i < n; i++ {
		sub(t, s, c, 1000+i)
	}
	// Crash every 16th subscriber: the dead entries are spread across the
	// label range, so a screen that doesn't advance past its window will
	// meet at most one per sweep.
	dead := 0
	for i := sim.NodeID(0); i < n; i += 16 {
		det[1000+i] = true
		dead++
	}
	// One full sweep is n/budget = 16 Timeouts; compaction moves entries
	// under the cursor, so allow a few extra sweeps for re-screens.
	limit := 4 * (n / budget)
	rounds := 0
	for ; rounds < limit && s.N(tp) != n-dead; rounds++ {
		s.OnTimeout(c)
		c.Take()
	}
	if s.N(tp) != n-dead {
		t.Fatalf("after %d timeouts with budget %d: n=%d, want %d (sweep not scaling with budget)",
			limit, budget, s.N(tp), n-dead)
	}
	if s.Corrupted(tp) {
		t.Fatalf("db corrupted after cull sweep")
	}
	t.Logf("culled %d spread-out entries in %d timeouts (budget %d, n %d)", dead, rounds, budget, n)
}
