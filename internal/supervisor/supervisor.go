// Package supervisor implements the supervisor side of the BuildSR protocol
// (Algorithm 3, Sections 3.1, 3.3 and 4.1 of Feldmann et al.).
//
// The supervisor is the commonly known gateway of the system. Per topic it
// maintains a database of (label, subscriber) tuples, hands out
// configurations (pred, label, succ) in a round-robin fashion, processes
// subscribe/unsubscribe requests with a constant number of messages
// (Theorem 7), repairs its database from arbitrary corruption with purely
// local actions (Lemma 9), and culls crashed subscribers reported by the
// single system-wide failure detector (Section 3.3).
//
// The paper assumes the supervisor itself is reliable. This package
// deliberately departs from that assumption: several supervisors can form
// a crash-tolerant plane (JoinPlane) in which topics are sharded by
// consistent hashing, peers monitor each other through the same failure
// detector that screens subscribers, a dead supervisor's topics migrate to
// their hashdht successors, and the successor rebuilds the topic database
// from the live overlay via the Reregister/OwnerAnnounce handshake — the
// database is soft state recoverable from the system, exactly the property
// the paper's legitimacy proof relies on. See plane.go.
package supervisor

import (
	"sort"
	"sync"
	"unsafe"

	"sspubsub/internal/label"
	"sspubsub/internal/ordering"
	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
)

// Supervisor is a sim.Handler managing one database per topic. All entry
// points lock, so live-runtime introspection (public API snapshots) is safe
// concurrently with the protocol goroutine.
type Supervisor struct {
	mu       sync.Mutex
	self     sim.NodeID
	detector sim.Detector
	topics   map[sim.Topic]*topicDB

	// CullPerTimeout bounds how many database entries per topic the failure
	// detector screens each Timeout (keeps per-interval work constant).
	CullPerTimeout int

	// plane is the crash-tolerant multi-supervisor state (nil for a
	// classic single-supervisor deployment, which owns every topic and
	// pays zero plane overhead). See plane.go.
	plane *plane

	// repFactor is how many hashdht successors each owned topic's
	// database is replicated to (0 disables replication); replicas holds
	// the warm copies this supervisor keeps for topics it stands
	// successor for. See replica.go.
	repFactor int
	replicas  map[sim.Topic]*replicaDB

	// defaultMode seeds the delivery mode of topics created after it is
	// set (SetDefaultMode); per-topic overrides via SetTopicMode. The mode
	// is directory metadata: it rides the replication delta stream and the
	// anti-entropy digests so warm replicas adopt it with the labels.
	defaultMode ordering.Mode
}

// topicDB is the database for one topic plus the round-robin cursor.
//
// Three structures mirror the same tuple set so every per-request operation
// is O(log n) instead of the O(n) scans (labelOf, checkMultipleCopies) and
// O(n log n) re-sorts (neighbors) the first version paid — the structure
// that fell over first when the scale harness pushed past 10^4 subscribers:
//
//   - db is the source of truth, label → subscriber.
//   - byID inverts it for the common clean case (labelOf in O(1)); ids
//     holding several labels — corruption case (ii) — are tracked in dup
//     and fall back to the scan until CheckMultipleCopies repairs them.
//   - idx orders the tuples by ring position for predecessor/successor and
//     k-th queries (see ordindex.go).
//
// dirty gates the CheckLabels repair scan: the normal subscribe/unsubscribe
// path preserves database validity, so the O(n) repair only runs after an
// operation that can actually corrupt it (detector culls, reregistration
// under rebuild grace, injected corruption).
type topicDB struct {
	// db maps label → subscriber. The ⊥ subscriber (sim.None) and labels
	// outside {l(0) … l(n−1)} are representable on purpose: they are the
	// corrupted states of Section 3.1 that CheckLabels repairs.
	db   map[label.Label]sim.NodeID
	byID map[sim.NodeID]label.Label
	dup  map[sim.NodeID]bool
	idx  ordIndex
	next uint64
	// cullNext is the failure-detector screen's own cursor. It advances by
	// CullPerTimeout per Timeout — the width of the window it screened —
	// unlike next, which advances by one (the refresh sends one
	// configuration per interval by design). Sharing next for both roles
	// was the scale harness' second finding: consecutive screen windows
	// overlapped in all but one entry, so the sweep rate was one entry per
	// interval regardless of the configured budget, and culling a 1%
	// crash burst at n=10^4 took tens of thousands of rounds instead of
	// n/CullPerTimeout.
	cullNext uint64

	// epoch is the ownership era this database serves at. It is carried in
	// every SetData so subscribers can discriminate a deposed owner's stale
	// commands; it only ever moves forward (adoption, handover, and epoch
	// repair from Reregister reports all bump it).
	epoch uint64
	// grace, while positive, exempts the database from CheckLabels'
	// relabelling (⊥ purging still runs) and counts down one per Timeout.
	// A freshly adopted database starts with a rebuild grace so surviving
	// subscribers can re-report their pre-failover labels before the
	// compaction rule would overwrite them — preserving the live overlay
	// instead of rebuilding the ring from scratch.
	grace int
	// graceCeil is what remains of the era's total rebuild-grace budget
	// (graceCeiling at adoption, counting down with grace): in-grace
	// Reregisters may re-arm grace, but only up to this remainder, so a
	// sustained Reregister stream cannot defer relabelling forever.
	graceCeil int
	// dirty records that the database may violate validity (Section 3.1)
	// and CheckLabels has repair work to do.
	dirty bool

	// track gates replication capture: put/del maintain repHash (the
	// XOR-fold digest the anti-entropy probes ship) and buffer the
	// mutation in pending for the next delta flush. repOverflow marks a
	// dropped buffer (a full sync repairs instead); syncRound numbers
	// full-sync rounds. See replica.go.
	track       bool
	repHash     [16]byte
	pending     []repOp
	repOverflow bool
	syncRound   uint64

	// mode is the topic's delivery mode (directory metadata, replicated
	// alongside the label set).
	mode ordering.Mode
}

type entry struct {
	l  label.Label
	id sim.NodeID
}

func newTopicDB() *topicDB {
	return &topicDB{
		db:   make(map[label.Label]sim.NodeID),
		byID: make(map[sim.NodeID]label.Label),
	}
}

// put records l → v across all three mirrors. The ⊥ subscriber is kept in
// db and idx (it is a representable corrupted state) but never indexed by
// id.
func (db *topicDB) put(l label.Label, v sim.NodeID) {
	old, hadOld := db.db[l]
	if hadOld {
		if old == v {
			return
		}
		db.unmapID(old, l)
	}
	db.db[l] = v
	db.idx.insert(l, v)
	db.mapID(v, l)
	if db.track {
		db.repNotePut(l, v, old, hadOld)
	}
}

// del removes l across all three mirrors.
func (db *topicDB) del(l label.Label) {
	v, ok := db.db[l]
	if !ok {
		return
	}
	delete(db.db, l)
	db.idx.remove(l)
	db.unmapID(v, l)
	if db.track {
		db.repNoteDel(l, v)
	}
}

// labelLess is the "lowest label" order labelOf has always used.
func labelLess(a, b label.Label) bool { return a.Index() < b.Index() }

func (db *topicDB) mapID(v sim.NodeID, l label.Label) {
	if v == sim.None {
		return
	}
	cur, ok := db.byID[v]
	if !ok {
		db.byID[v] = l
		return
	}
	// v now holds more than one label (corruption case (ii)): keep byID at
	// the lowest and remember the id needs CheckMultipleCopies.
	if labelLess(l, cur) {
		db.byID[v] = l
	}
	if db.dup == nil {
		db.dup = make(map[sim.NodeID]bool)
	}
	db.dup[v] = true
}

func (db *topicDB) unmapID(v sim.NodeID, l label.Label) {
	if v == sim.None {
		return
	}
	if db.dup[v] {
		// Rare (only reachable through injected corruption): recount v's
		// labels to restore the lowest-label invariant.
		best, count := label.Bottom, 0
		for cl, w := range db.db {
			if w != v {
				continue
			}
			count++
			if best == label.Bottom || labelLess(cl, best) {
				best = cl
			}
		}
		switch {
		case count == 0:
			delete(db.byID, v)
			delete(db.dup, v)
		case count == 1:
			db.byID[v] = best
			delete(db.dup, v)
		default:
			db.byID[v] = best
		}
		return
	}
	if db.byID[v] == l {
		delete(db.byID, v)
	}
}

// New creates a supervisor with the given node ID and failure detector.
func New(self sim.NodeID, detector sim.Detector) *Supervisor {
	if detector == nil {
		detector = sim.NeverSuspects()
	}
	return &Supervisor{
		self:           self,
		detector:       detector,
		topics:         make(map[sim.Topic]*topicDB),
		CullPerTimeout: 1,
	}
}

// ID returns the supervisor's node ID.
func (s *Supervisor) ID() sim.NodeID { return s.self }

func (s *Supervisor) topic(t sim.Topic) *topicDB {
	db, ok := s.topics[t]
	if !ok {
		db = newTopicDB()
		db.track = s.plane != nil && s.repFactor > 0
		db.mode = s.defaultMode
		s.topics[t] = db
	}
	return db
}

// SetDefaultMode sets the delivery mode seeded into topics this supervisor
// creates from now on (existing topics are unchanged; use SetTopicMode).
func (s *Supervisor) SetDefaultMode(m ordering.Mode) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.defaultMode = m
}

// SetTopicMode records the delivery mode for one topic in the directory
// (creating the topic's database if needed).
func (s *Supervisor) SetTopicMode(t sim.Topic, m ordering.Mode) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.topic(t).mode = m
}

// ModeFor returns the delivery mode recorded for topic t: from the owned
// directory if this supervisor hosts the topic, from a held warm replica
// otherwise (defaultMode when neither knows the topic).
func (s *Supervisor) ModeFor(t sim.Topic) ordering.Mode {
	s.mu.Lock()
	defer s.mu.Unlock()
	if db, ok := s.topics[t]; ok {
		return db.mode
	}
	if rep, ok := s.replicas[t]; ok {
		return rep.mode
	}
	return s.defaultMode
}

// OnTimeout performs the periodic supervisor action for every topic:
// repair the database, screen a few entries against the failure detector,
// and send one configuration in round-robin order (Algorithm 3, Timeout).
func (s *Supervisor) OnTimeout(ctx sim.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.planeTimeout(ctx)
	// Iterate topics in a fixed order for determinism.
	ids := make([]sim.Topic, 0, len(s.topics))
	for t := range s.topics {
		ids = append(ids, t)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, t := range ids {
		s.timeoutTopic(ctx, t)
	}
}

func (s *Supervisor) timeoutTopic(ctx sim.Context, t sim.Topic) {
	db := s.topic(t)
	if db.grace > 0 {
		db.grace--
		if db.graceCeil > 0 {
			db.graceCeil--
		}
	}
	db.checkLabels()
	n := uint64(len(db.db))
	if n == 0 {
		return
	}
	// Cull crashed subscribers (Section 3.3): screen a window of
	// CullPerTimeout entries, then advance the cull cursor past the whole
	// window so successive Timeouts sweep the database in n/CullPerTimeout
	// intervals.
	for i := 0; i < s.CullPerTimeout; i++ {
		cursor := (db.cullNext + uint64(i)) % n
		if v, ok := db.db[label.FromIndex(cursor)]; ok && v != sim.None && s.detector.Suspects(v) {
			db.del(label.FromIndex(cursor))
			db.dirty = true // the cull leaves a gap at the cursor's label
			db.checkLabels()
			n = uint64(len(db.db))
			if n == 0 {
				return
			}
		}
	}
	db.cullNext = (db.cullNext + uint64(s.CullPerTimeout)) % n
	db.next = (db.next + 1) % n
	v, ok := db.db[label.FromIndex(db.next)]
	if !ok && db.grace > 0 {
		// During a rebuild grace the labels are whatever the survivors
		// re-reported, not the compact l(0 … n−1): walk the r-ordered index
		// so the round-robin refresh still reaches everyone.
		if nn := db.idx.kth(int(db.next) % db.idx.len()); nn != nil {
			v, ok = nn.id, true
		}
	}
	if ok && v != sim.None {
		s.sendConfiguration(ctx, t, db, v)
	}
}

// OnMessage dispatches the supervisor-bound requests. On a sharded plane,
// requests for topics this supervisor does not currently own are answered
// with an OwnerAnnounce redirect instead of being served — stale client
// routing after a migration corrects itself in one round trip, and no
// deposed supervisor ever grows a parallel database.
func (s *Supervisor) OnMessage(ctx sim.Context, m sim.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch b := m.Body.(type) {
	case proto.Subscribe:
		v := b.V
		if v == sim.None {
			v = m.From
		}
		if s.redirectIfNotOwner(ctx, m.Topic, v) {
			return
		}
		s.subscribe(ctx, m.Topic, v)
	case proto.Unsubscribe:
		v := b.V
		if v == sim.None {
			v = m.From
		}
		if s.redirectIfNotOwner(ctx, m.Topic, v) {
			return
		}
		s.unsubscribe(ctx, m.Topic, v)
	case proto.GetConfiguration:
		v := b.V
		if v == sim.None {
			v = m.From
		}
		if s.redirectIfNotOwner(ctx, m.Topic, v) {
			return
		}
		s.getConfiguration(ctx, m.Topic, v)
	case proto.SetData:
		// A subscriber configuration addressed to a supervisor: some
		// database records this supervisor as a topic member. Only an
		// arbitrarily corrupted directory (e.g. a scrambled replica adopted
		// warm) produces such a tuple, and nothing else removes it — the
		// failure detector never suspects a live supervisor, so the
		// round-robin refresh would re-send it forever. Mirror the departed
		// subscriber's repair: answer with Unsubscribe until the database
		// forgets us. The all-⊥ permission frame that answer triggers has a
		// ⊥ label, so the exchange terminates.
		if !b.Label.IsBottom() && m.From != sim.None {
			ctx.Send(m.From, m.Topic, proto.Unsubscribe{V: s.self})
		}
	case proto.Reregister:
		s.reregister(ctx, m.Topic, b)
	case proto.PlaneGossip:
		s.absorbGossip(b)
	case proto.ReplicaDelta:
		s.onReplicaDelta(m.Topic, b)
	case proto.ReplicaDigest:
		s.onReplicaDigest(ctx, m.Topic, m.From, b)
	case proto.ReplicaSync:
		s.onReplicaSync(m.Topic, b)
	}
}

// subscribe implements Algorithm 3 Subscribe: insert v with the next free
// label and send it its configuration; if v is already recorded just
// re-send its configuration. Exactly one message either way (Theorem 7).
func (s *Supervisor) subscribe(ctx sim.Context, t sim.Topic, v sim.NodeID) {
	db := s.topic(t)
	db.checkLabels()
	db.checkMultipleCopies(v)
	if db.labelOf(v) != label.Bottom {
		s.getConfiguration(ctx, t, v)
		return
	}
	lab := db.nextFreeLabel()
	db.put(lab, v)
	if db.grace > 0 {
		// During a rebuild grace survivors hold arbitrary labels, so the
		// probe may have landed in a gap: the post-grace CheckLabels must
		// still compact.
		db.dirty = true
	}
	s.sendConfiguration(ctx, t, db, v)
}

// nextFreeLabel returns the lowest-index unused label at or above l(n). In
// the paper's compact database this is always exactly l(n); during a
// rebuild grace the database may hold gaps and out-of-range survivors, so
// probe upward until a free slot appears (at most n+1 probes).
func (db *topicDB) nextFreeLabel() label.Label {
	for i := uint64(len(db.db)); ; i++ {
		if _, taken := db.db[label.FromIndex(i)]; !taken {
			return label.FromIndex(i)
		}
	}
}

// unsubscribe implements Algorithm 3 Unsubscribe: remove v, move the node
// with the highest label into the vacated label, send that node its new
// configuration, and grant v permission to drop its connections by sending
// it the all-⊥ configuration. At most two messages (Theorem 7).
func (s *Supervisor) unsubscribe(ctx sim.Context, t sim.Topic, v sim.NodeID) {
	db := s.topic(t)
	db.checkLabels()
	db.checkMultipleCopies(v)
	lu := db.labelOf(v)
	if lu != label.Bottom {
		n := uint64(len(db.db))
		last := label.FromIndex(n - 1)
		if n > 1 && lu != last {
			w := db.db[last]
			db.del(last)
			db.put(lu, w) // w takes over v's label
			s.sendConfiguration(ctx, t, db, w)
		} else {
			db.del(lu)
		}
		if db.grace > 0 {
			// The highest *compact* label may not be the entry the database
			// actually holds mid-rebuild; let the post-grace repair recheck.
			db.dirty = true
		}
	}
	ctx.Send(v, t, proto.SetData{Epoch: db.epoch}) // all-⊥: permission to leave
}

// getConfiguration implements Algorithm 3 GetConfiguration: send v its
// configuration if recorded, the all-⊥ configuration otherwise (v will then
// re-subscribe via action (i) if it wants in — this realizes the
// "integrate v into the database" of Section 3.2.1 in two steps).
func (s *Supervisor) getConfiguration(ctx sim.Context, t sim.Topic, v sim.NodeID) {
	db := s.topic(t)
	db.checkMultipleCopies(v)
	if db.labelOf(v) == label.Bottom {
		ctx.Send(v, t, proto.SetData{Epoch: db.epoch})
		return
	}
	s.sendConfiguration(ctx, t, db, v)
}

func (s *Supervisor) sendConfiguration(ctx sim.Context, t sim.Topic, db *topicDB, v sim.NodeID) {
	lab := db.labelOf(v)
	pred, succ := db.neighbors(lab)
	ctx.Send(v, t, proto.SetData{Pred: pred, Label: lab, Succ: succ, Epoch: db.epoch})
}

// labelOf returns the (lowest) label stored for v, or ⊥. O(1) through the
// reverse index in the clean case; ids with duplicate labels (and queries
// for the ⊥ subscriber) fall back to the scan until repaired.
func (db *topicDB) labelOf(v sim.NodeID) label.Label {
	if v == sim.None || db.dup[v] {
		return db.scanLabelOf(v)
	}
	if l, ok := db.byID[v]; ok {
		return l
	}
	return label.Bottom
}

func (db *topicDB) scanLabelOf(v sim.NodeID) label.Label {
	best := label.Bottom
	for l, w := range db.db {
		if w == v && (best == label.Bottom || labelLess(l, best)) {
			best = l
		}
	}
	return best
}

// checkMultipleCopies removes all duplicate tuples for v except the one
// with the lowest label (Algorithm 3, CheckMultipleCopies — corruption
// case (ii)). A no-op — O(1) — unless v is actually duplicated.
func (db *topicDB) checkMultipleCopies(v sim.NodeID) {
	if v == sim.None || !db.dup[v] {
		return
	}
	keep := db.scanLabelOf(v)
	for l, w := range db.db {
		if w == v && l != keep {
			db.del(l)
			// Removing the duplicate can leave a gap below l(n−1) —
			// corruption case (iii) — so CheckLabels has work again.
			db.dirty = true
		}
	}
}

// checkLabels repairs the database (Algorithm 3, CheckLabels): it removes
// tuples with ⊥ subscribers (case (i)) and relabels entries so that exactly
// the labels l(0) … l(n−1) are present (cases (iii) and (iv)), moving the
// entries with the highest/out-of-range labels into the gaps. Purely local:
// no messages are generated; the round-robin refresh propagates the
// corrected labels.
//
// The repair scan only runs while the database is marked dirty: the normal
// subscribe/unsubscribe path preserves validity, so per-request CheckLabels
// calls are O(1) until a cull, a rebuild-grace insertion or injected
// corruption actually gives the scan something to do.
func (db *topicDB) checkLabels() {
	if !db.dirty {
		return
	}
	for l, v := range db.db {
		if v == sim.None {
			db.del(l)
		}
	}
	if db.grace > 0 {
		// Rebuild grace: survivors are still re-reporting their pre-failover
		// labels; compacting now would reassign labels the rightful holders
		// are about to claim and force the whole overlay to re-linearize.
		// The database stays dirty so the post-grace pass does compact.
		return
	}
	defer func() { db.dirty = false }()
	n := uint64(len(db.db))
	var missing []label.Label // wanted labels not present, ascending
	var extra []entry         // entries with labels outside l(0 … n−1)
	for i := uint64(0); i < n; i++ {
		if _, ok := db.db[label.FromIndex(i)]; !ok {
			missing = append(missing, label.FromIndex(i))
		}
	}
	if len(missing) == 0 {
		return
	}
	for l, v := range db.db {
		if !l.Valid() || l.IsBottom() || l.Index() >= n || l != label.FromIndex(l.Index()) {
			extra = append(extra, entry{l, v})
		}
	}
	// Paper: take the tuple with maximum index j > i; sort extras by
	// descending index so the assignment is deterministic.
	sort.Slice(extra, func(i, j int) bool {
		return extraRank(extra[i].l) > extraRank(extra[j].l)
	})
	for i, gap := range missing {
		if i >= len(extra) {
			break // cannot happen with a consistent map, defensive only
		}
		id := extra[i].id
		db.del(extra[i].l)
		db.put(gap, id)
	}
}

// extraRank orders out-of-range labels: generated labels by their index,
// malformed labels last (they are replaced first in descending order).
func extraRank(l label.Label) uint64 {
	if l.Valid() && !l.IsBottom() {
		return l.Index()
	}
	return 1<<63 + uint64(l.Frac()>>1) // malformed: highest ranks
}

// neighbors returns the predecessor and successor tuples of lab in the
// r-ordering of the database, wrapping around the ring. With a single
// entry both are ⊥. O(log n) through the ordered index — this runs on
// every configuration send, so it must not touch all n entries.
func (db *topicDB) neighbors(lab label.Label) (pred, succ proto.Tuple) {
	if db.idx.len() <= 1 {
		return proto.Tuple{}, proto.Tuple{}
	}
	p := db.idx.pred(lab)
	if p == nil {
		p = db.idx.max()
	}
	var sn *onode
	if db.idx.get(lab) != nil {
		sn = db.idx.succ(lab)
	} else {
		// lab not present (transient corruption): neighbors of its position.
		sn = db.idx.ceil(lab)
	}
	if sn == nil {
		sn = db.idx.min()
	}
	return proto.Tuple{L: p.l, Ref: p.id}, proto.Tuple{L: sn.l, Ref: sn.id}
}

// ---- introspection and corruption injection (tests and experiments) ----

// N returns the number of recorded subscribers for a topic.
func (s *Supervisor) N(t sim.Topic) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if db, ok := s.topics[t]; ok {
		return len(db.db)
	}
	return 0
}

// Hosts reports whether this supervisor currently holds a database for the
// topic — i.e. considers itself the topic's owner. Unlike the other
// introspection methods it never instantiates an empty database, so probes
// can ask every supervisor without perturbing ownership state.
func (s *Supervisor) Hosts(t sim.Topic) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.topics[t]
	return ok
}

// EpochOf returns the ownership epoch the hosted database serves at (0
// when the topic is not hosted).
func (s *Supervisor) EpochOf(t sim.Topic) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if db, ok := s.topics[t]; ok {
		return db.epoch
	}
	return 0
}

// Topics returns all topics with a database, sorted.
func (s *Supervisor) Topics() []sim.Topic {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]sim.Topic, 0, len(s.topics))
	for t := range s.topics {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Snapshot returns a copy of the topic database.
func (s *Supervisor) Snapshot(t sim.Topic) map[label.Label]sim.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	db, ok := s.topics[t]
	if !ok {
		return map[label.Label]sim.NodeID{}
	}
	out := make(map[label.Label]sim.NodeID, len(db.db))
	for l, v := range db.db {
		out[l] = v
	}
	return out
}

// MemoryBytes estimates the resident size of the topic database: the
// label→subscriber map, the reverse index and the ordered index. It is an
// accounting figure for the scale harness (deterministic, not a heap
// measurement): per tuple, one treap node plus one entry in each of the two
// maps (Go map entries cost roughly 2× their key+value payload once bucket
// overhead and load factor are amortized).
func (s *Supervisor) MemoryBytes(t sim.Topic) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	db, ok := s.topics[t]
	if !ok {
		return 0
	}
	const (
		nodeBytes  = uint64(unsafe.Sizeof(onode{}))
		dbEntry    = 2 * uint64(unsafe.Sizeof(label.Label{})+unsafe.Sizeof(sim.NodeID(0)))
		byIDEntry  = 2 * uint64(unsafe.Sizeof(sim.NodeID(0))+unsafe.Sizeof(label.Label{}))
		perTupleSz = nodeBytes + dbEntry + byIDEntry
	)
	return uint64(unsafe.Sizeof(*db)) + uint64(len(db.db))*perTupleSz
}

// LabelOf returns the label recorded for v, or ⊥.
func (s *Supervisor) LabelOf(t sim.Topic, v sim.NodeID) label.Label {
	s.mu.Lock()
	defer s.mu.Unlock()
	if db, ok := s.topics[t]; ok {
		return db.labelOf(v)
	}
	return label.Bottom
}

// Corrupted reports whether the database currently violates any of the four
// validity conditions of Section 3.1.
func (s *Supervisor) Corrupted(t sim.Topic) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	db, ok := s.topics[t]
	if !ok {
		return false
	}
	n := uint64(len(db.db))
	seen := make(map[sim.NodeID]bool, n)
	for l, v := range db.db {
		if v == sim.None { // (i)
			return true
		}
		if seen[v] { // (ii)
			return true
		}
		seen[v] = true
		if !l.Valid() || l.IsBottom() || l.Index() >= n || l != label.FromIndex(l.Index()) { // (iv)
			return true
		}
	}
	for i := uint64(0); i < n; i++ { // (iii)
		if _, ok := db.db[label.FromIndex(i)]; !ok {
			return true
		}
	}
	return false
}

// InjectRaw force-writes a raw tuple into the database (tests: corruption
// cases (i), (ii) and (iv)).
func (s *Supervisor) InjectRaw(t sim.Topic, l label.Label, v sim.NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	db := s.topic(t)
	db.put(l, v)
	db.dirty = true
}

// DeleteLabel force-removes a label (tests: corruption case (iii)).
func (s *Supervisor) DeleteLabel(t sim.Topic, l label.Label) {
	s.mu.Lock()
	defer s.mu.Unlock()
	db := s.topic(t)
	db.del(l)
	db.dirty = true
}

// RepairNow runs the local repair actions immediately (tests).
func (s *Supervisor) RepairNow(t sim.Topic) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.topic(t).checkLabels()
}

var _ sim.Handler = (*Supervisor)(nil)
