// Directory replication: the warm-replica layer behind supervisor failover.
//
// PR 5's plane made supervisor crashes survivable, but its repair path —
// the adopting successor re-interrogating every live subscriber through
// Reregister — costs Θ(n) traffic and Θ(n) convergence time, dominated by
// the subscribers' ratcheting staleness probes. This file demotes that
// rebuild to a fallback: with a positive replication factor every topic
// owner continuously replicates its (label, subscriber) database to the
// topic's hashdht successors, so the successor that adopts after a crash
// starts from a warm replica at a fresh epoch and can announce itself to
// the recorded subscribers immediately — near-constant failover, no
// relabelling, no dependence on the subscriber population size.
//
// The replication protocol is itself self-stabilizing, in the same spirit
// as the replicated-state-machine construction of self-stabilizing Paxos:
//
//   - Delta stream. Mutations (put/del) buffer in a bounded per-topic
//     queue and flush to the successors each Timeout as fire-and-forget
//     ReplicaDelta batches. There is no log and no acknowledgement: a
//     buffer overflow simply drops the buffer and schedules a full sync.
//   - Anti-entropy. Every gossip period the owner pushes a ReplicaDigest
//     probe carrying its database root digest — an order-independent XOR
//     fold of per-entry hashes, the same truncated-SHA-256 construction
//     as the Patricia trie's structural hash — and the replica answers
//     only on mismatch. Replicas also periodically recompute their own
//     digest from content, so even corruption that forged a matching
//     stored digest is caught within a bounded number of probes.
//   - Bounded-chunk sync. On mismatch the owner ships its database in
//     ReplicaSync chunks of at most maxSyncChunk entries; the replica
//     stages a round's chunks and atomically replaces its state when the
//     round completes. An arbitrarily corrupted replica therefore
//     converges like any other corrupted state.
//
// Everything here runs under the supervisor mutex, off the plane Timeout
// and OnMessage paths; a deployment with ReplicationFactor 0 (the
// default) takes none of these code paths beyond one boolean test in
// put/del, which keeps the hot-path allocation gates bit-identical.

package supervisor

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"

	"sspubsub/internal/hashdht"
	"sspubsub/internal/label"
	"sspubsub/internal/ordering"
	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
)

const (
	// maxPendingOps bounds the per-topic delta buffer. Overflow drops the
	// buffer and falls back to a full sync — replication never holds an
	// unbounded log.
	maxPendingOps = 512
	// maxSyncChunk bounds the entries per ReplicaSync message.
	maxSyncChunk = 256
	// replicaStaleAfter is the freshness window, in plane ticks, within
	// which an adoption trusts its replica. Owner contact (a delta, a
	// matching probe, a completed sync) refreshes it; a replica whose
	// owner has been silent longer — a restart with ancient state, a
	// partition — falls back to the Reregister rebuild.
	replicaStaleAfter = 64
	// replicaVerifyEvery is how often (in plane ticks) a replica
	// recomputes its digest from content instead of answering probes from
	// the incrementally maintained one — the self-check that catches
	// corruption which forged a coherent-looking stored digest.
	replicaVerifyEvery = 16
	// graceCeiling is the hard per-era budget of rebuild-grace ticks. Each
	// in-grace Reregister may re-arm the grace window, but never past what
	// remains of this budget — a sustained Reregister stream (chaos churn
	// produces exactly that) can no longer defer relabelling forever.
	graceCeiling = 4 * rebuildGrace
	// warmGrace is the short rebuild grace of a warm adoption: the
	// database is already populated, so the window only needs to cover
	// stragglers whose Reregister answers the adoption announcement.
	warmGrace = 8
)

// repOp is one buffered directory mutation awaiting delta flush.
type repOp struct {
	del bool
	l   label.Label
	v   sim.NodeID
}

// entryHash is the per-tuple hash of the replication digest: truncated
// SHA-256 over the label's canonical bytes and the subscriber ID — the
// same 16-byte construction as the trie's leaf hash. The database digest
// is the XOR fold of its entries' hashes, which makes it order-independent
// and incrementally maintainable under put/del.
func entryHash(l label.Label, v sim.NodeID) [16]byte {
	var buf [17]byte
	binary.BigEndian.PutUint64(buf[0:8], l.Bits)
	buf[8] = l.Len
	binary.BigEndian.PutUint64(buf[9:17], uint64(v))
	sum := sha256.Sum256(buf[:])
	var out [16]byte
	copy(out[:], sum[:16])
	return out
}

func xor16(a, b [16]byte) [16]byte {
	for i := range a {
		a[i] ^= b[i]
	}
	return a
}

// digestOf recomputes the XOR-fold digest of a database from content.
func digestOf(db map[label.Label]sim.NodeID) [16]byte {
	var h [16]byte
	for l, v := range db {
		h = xor16(h, entryHash(l, v))
	}
	return h
}

// ---- owner side: mutation capture ----

// repNotePut records that put established l → v (replacing old when
// hadOld). Called from topicDB.put with track set.
func (db *topicDB) repNotePut(l label.Label, v sim.NodeID, old sim.NodeID, hadOld bool) {
	if hadOld {
		db.repHash = xor16(db.repHash, entryHash(l, old))
	}
	db.repHash = xor16(db.repHash, entryHash(l, v))
	db.pend(repOp{l: l, v: v})
}

// repNoteDel records that del removed l → v.
func (db *topicDB) repNoteDel(l label.Label, v sim.NodeID) {
	db.repHash = xor16(db.repHash, entryHash(l, v))
	db.pend(repOp{del: true, l: l})
}

func (db *topicDB) pend(op repOp) {
	if db.repOverflow {
		return
	}
	if len(db.pending) >= maxPendingOps {
		// No unbounded logs: drop the buffer, a full sync repairs instead.
		db.pending = db.pending[:0]
		db.repOverflow = true
		return
	}
	db.pending = append(db.pending, op)
}

// ---- replica side: state ----

// replicaDB is the warm copy of one topic's directory held by a hashdht
// successor of the topic's owner.
type replicaDB struct {
	epoch uint64
	db    map[label.Label]sim.NodeID
	// mode is the topic's replicated delivery mode (directory metadata; a
	// warm adoption carries it into the new era alongside the labels).
	mode ordering.Mode
	// hash is the incrementally maintained digest of db; verified is the
	// plane tick of the last recompute-from-content self-check.
	hash     [16]byte
	verified uint64
	// fresh is the plane tick of the last owner contact that confirmed
	// the replica current (delta applied, probe matched, sync completed).
	fresh uint64
	// stage accumulates the chunks of an in-flight full sync.
	stage *syncStage
}

type syncStage struct {
	epoch  uint64
	round  uint64
	total  uint64
	chunks map[uint64][]proto.ReplicaEntry
}

func (r *replicaDB) apply(l label.Label, v sim.NodeID) {
	if old, ok := r.db[l]; ok {
		if old == v {
			return
		}
		r.hash = xor16(r.hash, entryHash(l, old))
	}
	r.db[l] = v
	r.hash = xor16(r.hash, entryHash(l, v))
}

func (r *replicaDB) remove(l label.Label) {
	v, ok := r.db[l]
	if !ok {
		return
	}
	delete(r.db, l)
	r.hash = xor16(r.hash, entryHash(l, v))
}

// replica returns (creating if needed) the replica record for t. Lock held.
func (s *Supervisor) replica(t sim.Topic) *replicaDB {
	r, ok := s.replicas[t]
	if !ok {
		r = &replicaDB{db: make(map[label.Label]sim.NodeID)}
		if s.replicas == nil {
			s.replicas = make(map[sim.Topic]*replicaDB)
		}
		s.replicas[t] = r
	}
	return r
}

// SetReplicationFactor configures how many hashdht successors each topic
// owner replicates its directory to (0, the default, disables
// replication). Call alongside JoinPlane, before the supervisor is
// registered on a transport; every plane member must use the same factor.
func (s *Supervisor) SetReplicationFactor(k int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if k < 0 {
		k = 0
	}
	s.repFactor = k
	track := s.plane != nil && k > 0
	for _, db := range s.topics {
		db.track = track
	}
}

// ReplicationFactor returns the configured factor.
func (s *Supervisor) ReplicationFactor() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repFactor
}

// ---- timeout: delta flush, anti-entropy probes, replica GC ----

// replicaTimeout runs the owner-side replication work for one plane tick:
// flush buffered deltas, push digest probes on the gossip cadence, and
// garbage-collect replicas this supervisor no longer should hold. Lock
// held; called from planeTimeout after peer screening.
func (s *Supervisor) replicaTimeout(ctx sim.Context) {
	p := s.plane
	if s.repFactor <= 0 {
		return
	}
	probe := p.tick%gossipEvery == 0
	hosted := make([]sim.Topic, 0, len(s.topics))
	for t := range s.topics {
		hosted = append(hosted, t)
	}
	sort.Slice(hosted, func(i, j int) bool { return hosted[i] < hosted[j] })
	for _, t := range hosted {
		db := s.topics[t]
		if !db.track || s.viewOwner(t) != s.self {
			continue
		}
		succs := p.ring.Successors(hashdht.TopicKey(t), s.repFactor)
		if len(succs) == 0 {
			continue
		}
		switch {
		case db.repOverflow:
			db.repOverflow = false
			for _, to := range succs {
				s.sendFullSync(ctx, t, db, to)
			}
		case len(db.pending) > 0:
			d := proto.ReplicaDelta{Epoch: db.epoch, Mode: uint8(db.mode)}
			for _, op := range db.pending {
				if op.del {
					d.Del = append(d.Del, op.l)
				} else {
					d.Put = append(d.Put, proto.ReplicaEntry{L: op.l, V: op.v})
				}
			}
			db.pending = db.pending[:0]
			for _, to := range succs {
				ctx.Send(to, t, d)
			}
		}
		if probe {
			dig := proto.ReplicaDigest{
				Probe: true, Epoch: db.epoch,
				Count: uint64(len(db.db)), Hash: db.repHash,
				Mode: uint8(db.mode),
			}
			for _, to := range succs {
				ctx.Send(to, t, dig)
			}
		}
	}
	if !probe || len(s.replicas) == 0 {
		return
	}
	// Replica GC: drop replicas of topics we neither own (an adoption
	// would consume those) nor stand successor for anymore — bounded
	// memory under arbitrary membership churn.
	held := make([]sim.Topic, 0, len(s.replicas))
	for t := range s.replicas {
		held = append(held, t)
	}
	sort.Slice(held, func(i, j int) bool { return held[i] < held[j] })
	for _, t := range held {
		if s.viewOwner(t) == s.self {
			continue
		}
		mine := false
		for _, id := range p.ring.Successors(hashdht.TopicKey(t), s.repFactor) {
			if id == s.self {
				mine = true
				break
			}
		}
		if !mine {
			delete(s.replicas, t)
		}
	}
}

// sendFullSync ships the hosted database to one replica holder in bounded
// chunks, walking the ordered index for a deterministic chunking. Lock
// held.
func (s *Supervisor) sendFullSync(ctx sim.Context, t sim.Topic, db *topicDB, to sim.NodeID) {
	db.syncRound++
	entries := make([]proto.ReplicaEntry, 0, len(db.db))
	db.idx.walk(func(l label.Label, v sim.NodeID) {
		entries = append(entries, proto.ReplicaEntry{L: l, V: v})
	})
	total := uint64(len(entries)+maxSyncChunk-1) / maxSyncChunk
	if total == 0 {
		total = 1
	}
	for seq := uint64(0); seq < total; seq++ {
		lo := int(seq) * maxSyncChunk
		hi := lo + maxSyncChunk
		if hi > len(entries) {
			hi = len(entries)
		}
		ctx.Send(to, t, proto.ReplicaSync{
			Epoch: db.epoch, Round: db.syncRound,
			Seq: seq, Chunks: total, Entries: entries[lo:hi],
			Mode: uint8(db.mode),
		})
	}
}

// ---- message handlers (lock held, dispatched from OnMessage) ----

// onReplicaDelta applies a streamed mutation batch to the local replica.
// Deltas from an older era than the replica's are a deposed owner's noise
// and are dropped; anti-entropy repairs any divergence a lost or
// reordered delta leaves behind.
func (s *Supervisor) onReplicaDelta(t sim.Topic, b proto.ReplicaDelta) {
	if s.plane == nil {
		return
	}
	rep := s.replica(t)
	if b.Epoch < rep.epoch {
		return
	}
	rep.epoch = b.Epoch
	rep.mode = ordering.Mode(b.Mode)
	for _, e := range b.Put {
		rep.apply(e.L, e.V)
	}
	for _, l := range b.Del {
		rep.remove(l)
	}
	rep.fresh = s.plane.tick
}

// onReplicaDigest handles both halves of the anti-entropy exchange: a
// probe (owner → replica) is answered only on mismatch; an answer
// (replica → owner) triggers a bounded-chunk full sync.
func (s *Supervisor) onReplicaDigest(ctx sim.Context, t sim.Topic, from sim.NodeID, b proto.ReplicaDigest) {
	if s.plane == nil {
		return
	}
	if b.Probe {
		rep := s.replica(t)
		// The mode is a single directory-level scalar, so the probe itself
		// repairs it directly — no sync round needed for a mode divergence.
		rep.mode = ordering.Mode(b.Mode)
		if s.plane.tick-rep.verified >= replicaVerifyEvery {
			// Self-check: recompute from content so corruption that kept
			// the stored digest coherent is still caught within a bounded
			// number of probes.
			rep.hash = digestOf(rep.db)
			rep.verified = s.plane.tick
		}
		if b.Epoch == rep.epoch && b.Count == uint64(len(rep.db)) && b.Hash == rep.hash {
			rep.fresh = s.plane.tick
			return
		}
		ctx.Send(from, t, proto.ReplicaDigest{
			Epoch: rep.epoch, Count: uint64(len(rep.db)), Hash: rep.hash,
		})
		return
	}
	// Answer: we are (or believe we are) the owner. Ship a full sync if the
	// replica's digest disagrees with the live database.
	db, hosting := s.topics[t]
	if !hosting || !db.track || s.viewOwner(t) != s.self || from == s.self {
		return
	}
	if b.Epoch != db.epoch || b.Count != uint64(len(db.db)) || b.Hash != db.repHash {
		s.sendFullSync(ctx, t, db, from)
	}
}

// onReplicaSync stages one full-sync chunk and atomically replaces the
// replica when the round is complete. Chunks of an older round or era are
// dropped; duplicates are idempotent.
func (s *Supervisor) onReplicaSync(t sim.Topic, b proto.ReplicaSync) {
	if s.plane == nil || b.Chunks == 0 || b.Seq >= b.Chunks {
		return
	}
	rep := s.replica(t)
	if b.Epoch < rep.epoch {
		return
	}
	st := rep.stage
	if st == nil || b.Epoch > st.epoch || (b.Epoch == st.epoch && b.Round > st.round) {
		st = &syncStage{
			epoch: b.Epoch, round: b.Round, total: b.Chunks,
			chunks: make(map[uint64][]proto.ReplicaEntry),
		}
		rep.stage = st
	}
	if b.Epoch != st.epoch || b.Round != st.round || b.Chunks != st.total {
		return // stale or inconsistent round
	}
	st.chunks[b.Seq] = b.Entries
	if uint64(len(st.chunks)) < st.total {
		return
	}
	// Round complete: rebuild the replica wholesale.
	fresh := make(map[label.Label]sim.NodeID)
	var h [16]byte
	for seq := uint64(0); seq < st.total; seq++ {
		for _, e := range st.chunks[seq] {
			if old, ok := fresh[e.L]; ok {
				h = xor16(h, entryHash(e.L, old))
			}
			fresh[e.L] = e.V
			h = xor16(h, entryHash(e.L, e.V))
		}
	}
	rep.db = fresh
	rep.hash = h
	rep.epoch = st.epoch
	rep.mode = ordering.Mode(b.Mode)
	rep.stage = nil
	rep.fresh = s.plane.tick
	rep.verified = s.plane.tick
}

// ---- adoption: the warm path ----

// warmUsable reports whether the held replica is trustworthy enough to
// adopt from: non-empty, at least as recent an era as the plane has
// observed, and refreshed by owner contact within the staleness window.
// Lock held.
func (s *Supervisor) warmUsable(rep *replicaDB, t sim.Topic) bool {
	if rep == nil || len(rep.db) == 0 {
		return false
	}
	p := s.plane
	return rep.epoch >= p.known[t] && p.tick-rep.fresh <= replicaStaleAfter
}

// seedFromReplica populates a freshly adopted database from the warm
// replica, in deterministic label order (the puts also charge the new
// owner's own delta buffer, so the warm state propagates onward to its
// successors). Lock held.
func (db *topicDB) seedFromReplica(rep *replicaDB) {
	labels := make([]label.Label, 0, len(rep.db))
	for l := range rep.db {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return labelLess(labels[i], labels[j]) })
	for _, l := range labels {
		db.put(l, rep.db[l])
	}
}

// ---- introspection (tests, chaos probes, cluster predicates) ----

// DirectoryDigest returns the hosted database's era and digest, recomputed
// from content (so it also cross-checks the incrementally maintained
// digest the protocol ships). ok is false when the topic is not hosted.
func (s *Supervisor) DirectoryDigest(t sim.Topic) (epoch uint64, hash [16]byte, count int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	db, hosting := s.topics[t]
	if !hosting {
		return 0, hash, 0, false
	}
	return db.epoch, digestOf(db.db), len(db.db), true
}

// HeldReplicaDigest returns the held replica's era and digest, recomputed
// from content. ok is false when no replica is held for the topic.
func (s *Supervisor) HeldReplicaDigest(t sim.Topic) (epoch uint64, hash [16]byte, count int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, held := s.replicas[t]
	if !held {
		return 0, hash, 0, false
	}
	return rep.epoch, digestOf(rep.db), len(rep.db), true
}

// ReplicaSnapshot returns a copy of the held replica's database (empty map
// when none is held).
func (s *Supervisor) ReplicaSnapshot(t sim.Topic) map[label.Label]sim.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[label.Label]sim.NodeID{}
	if rep, ok := s.replicas[t]; ok {
		for l, v := range rep.db {
			out[l] = v
		}
	}
	return out
}

// CorruptReplica scrambles the held replica for a topic — the chaos
// `corrupt-replica` fault. Entries, the stored digest and the replica era
// are all fair game; anti-entropy must detect whatever this leaves behind
// and converge the replica back to the owner's state. A safe no-op when
// no replica is held (single supervisor, ReplicationFactor 0, or a node
// that is not a successor of the topic). Deterministic given rng.
func (s *Supervisor) CorruptReplica(t sim.Topic, rng interface{ Intn(int) int }) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, ok := s.replicas[t]
	if !ok || s.plane == nil {
		return
	}
	switch rng.Intn(3) {
	case 0:
		// Entry scramble: bogus tuples land in the replica, digest left
		// incoherent with content. Like the Section 3.1 corruption cases,
		// the bogus subscribers are drawn from the model's node universe —
		// ⊥, this supervisor itself, or recorded subscribers at wrong
		// labels — each of which the repair machinery can evict (a node ID
		// that never existed would sit beyond the failure detector forever).
		pool := []sim.NodeID{sim.None, s.self}
		vals := make([]sim.NodeID, 0, len(rep.db))
		for _, v := range rep.db {
			vals = append(vals, v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		pool = append(pool, vals...)
		for i := 0; i < 1+rng.Intn(3); i++ {
			rep.db[label.FromIndex(uint64(rng.Intn(8)))] = pool[rng.Intn(len(pool))]
		}
	case 1:
		// Amnesia: a deterministic prefix of the label-ordered entries
		// vanishes; the stored digest still claims they exist.
		if len(rep.db) > 0 {
			labels := make([]label.Label, 0, len(rep.db))
			for l := range rep.db {
				labels = append(labels, l)
			}
			sort.Slice(labels, func(i, j int) bool { return labelLess(labels[i], labels[j]) })
			for _, l := range labels[:1+rng.Intn(len(labels))] {
				delete(rep.db, l)
			}
		}
	default:
		// Digest/era poison: the stored digest flips and the era regresses,
		// making the replica look like an ancient restart.
		rep.hash[rng.Intn(16)] ^= byte(1 + rng.Intn(255))
		rep.epoch = uint64(rng.Intn(2))
	}
}
