package supervisor

import (
	"math/rand"
	"sort"
	"testing"

	"sspubsub/internal/hashdht"
	"sspubsub/internal/label"
	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
	"sspubsub/internal/simtest"
)

// fakeDetector (a settable oracle) is declared in supervisor_test.go.

// planeSups builds supervisors 1..k sharing a plane over one detector.
func planeSups(det fakeDetector, k int) map[sim.NodeID]*Supervisor {
	ids := make([]sim.NodeID, k)
	for i := range ids {
		ids[i] = sim.NodeID(1 + i)
	}
	out := make(map[sim.NodeID]*Supervisor, k)
	for _, id := range ids {
		s := New(id, det)
		s.JoinPlane(ids)
		out[id] = s
	}
	return out
}

// ownerOf finds which of the supervisors believes it owns t (all agree on
// a healthy plane — hashing is deterministic).
func ownerOf(sups map[sim.NodeID]*Supervisor, t sim.Topic) sim.NodeID {
	for id, s := range sups {
		if s.PlaneOwner(t) == id {
			return id
		}
	}
	return sim.None
}

func TestPlaneAgreesOnOwner(t *testing.T) {
	sups := planeSups(fakeDetector{}, 4)
	for tp := sim.Topic(1); tp <= 40; tp++ {
		var owner sim.NodeID
		for _, s := range sups {
			got := s.PlaneOwner(tp)
			if owner == sim.None {
				owner = got
			} else if got != owner {
				t.Fatalf("topic %d: supervisors disagree on the owner (%d vs %d)", tp, got, owner)
			}
		}
		if _, ok := sups[owner]; !ok {
			t.Fatalf("topic %d owned by non-member %d", tp, owner)
		}
	}
}

func TestRedirectWhenNotOwner(t *testing.T) {
	sups := planeSups(fakeDetector{}, 3)
	owner := ownerOf(sups, tp)
	var other sim.NodeID
	for id := range sups {
		if id != owner {
			other = id
			break
		}
	}
	c := simtest.NewCtx(other)
	sups[other].OnMessage(c, sim.Message{To: other, From: 50, Topic: tp, Body: proto.Subscribe{V: 50}})
	msgs := c.Take()
	if len(msgs) != 1 {
		t.Fatalf("%d replies, want 1 redirect", len(msgs))
	}
	ann, ok := msgs[0].Body.(proto.OwnerAnnounce)
	if !ok || ann.Owner != owner || msgs[0].To != 50 {
		t.Fatalf("non-owner answered %v, want OwnerAnnounce{Owner:%d} to 50", msgs[0], owner)
	}
	if sups[other].Hosts(tp) {
		t.Fatal("redirecting supervisor grew a database for a topic it does not own")
	}
}

func TestReregisterPreservesLabel(t *testing.T) {
	det := fakeDetector{}
	sups := planeSups(det, 2)
	owner := ownerOf(sups, tp)
	s := sups[owner]
	c := simtest.NewCtx(owner)

	// A survivor of a crashed predecessor reports its old label and era.
	lab := label.FromIndex(5)
	s.OnMessage(c, sim.Message{To: owner, From: 40, Topic: tp,
		Body: proto.Reregister{V: 40, Label: lab, Epoch: 7}})
	msgs := c.Take()
	if len(msgs) != 1 {
		t.Fatalf("%d replies, want 1 configuration", len(msgs))
	}
	d, ok := msgs[0].Body.(proto.SetData)
	if !ok || d.Label != lab {
		t.Fatalf("reregister answered %v, want SetData with the preserved label %s", msgs[0].Body, lab)
	}
	if d.Epoch <= 7 {
		t.Fatalf("epoch repair failed: serving at %d, subscriber had seen era 7", d.Epoch)
	}
	if s.LabelOf(tp, 40) != lab {
		t.Fatal("database did not adopt the reported label")
	}

	// A second claimant of the same label cannot evict the first: it gets a
	// fresh subscription instead.
	s.OnMessage(c, sim.Message{To: owner, From: 41, Topic: tp,
		Body: proto.Reregister{V: 41, Label: lab, Epoch: 7}})
	msgs = c.Take()
	if len(msgs) != 1 {
		t.Fatalf("conflicting reregister: %d replies", len(msgs))
	}
	d2 := msgs[0].Body.(proto.SetData)
	if d2.Label == lab || d2.Label.IsBottom() {
		t.Fatalf("conflicting claimant got label %s, want a fresh one", d2.Label)
	}
	if s.LabelOf(tp, 40) != lab {
		t.Fatal("original holder lost its label to a conflicting claim")
	}
}

func TestPlaneMigratesOnSuspicion(t *testing.T) {
	det := fakeDetector{}
	sups := planeSups(det, 3)
	owner := ownerOf(sups, tp)

	// The owner hosts the topic (a subscriber joined it) and its heartbeat
	// gossip reaches the peers — which is how they learn the topic exists.
	oc := simtest.NewCtx(owner)
	sups[owner].OnMessage(oc, sim.Message{To: owner, From: 30, Topic: tp, Body: proto.Subscribe{V: 30}})
	for i := 0; i < gossipEvery; i++ {
		sups[owner].OnTimeout(oc)
	}
	for _, m := range oc.Take() {
		if dst, ok := sups[m.To]; ok {
			dst.OnMessage(simtest.NewCtx(m.To), m)
		}
	}
	det[owner] = true

	// Drive every survivor's plane timeout: the hashdht successor must
	// adopt, the others must not.
	for id, s := range sups {
		if id == owner {
			continue
		}
		s.OnTimeout(simtest.NewCtx(id))
	}
	var successor sim.NodeID
	for id, s := range sups {
		if id == owner {
			continue
		}
		if s.PlaneOwner(tp) == id {
			successor = id
			if !s.Hosts(tp) {
				t.Fatalf("successor %d did not adopt the orphaned topic", id)
			}
			if s.EpochOf(tp) == 0 {
				t.Fatal("adoption did not open a fresh epoch")
			}
		} else if s.Hosts(tp) {
			t.Fatalf("non-successor %d adopted the topic", id)
		}
	}
	if successor == sim.None {
		t.Fatal("no survivor considers itself the owner")
	}

	// The owner returns: the successor must hand the topic back, pointing
	// its recorded subscribers at the restored owner.
	sc := simtest.NewCtx(successor)
	sups[successor].OnMessage(sc, sim.Message{To: successor, From: 30, Topic: tp,
		Body: proto.Reregister{V: 30, Label: label.FromIndex(0), Epoch: 1}})
	sc.Take()
	det[owner] = false
	sups[successor].OnTimeout(sc)
	if sups[successor].Hosts(tp) {
		t.Fatal("successor kept the topic after the owner returned")
	}
	redirected := false
	for _, m := range sc.Take() {
		if ann, ok := m.Body.(proto.OwnerAnnounce); ok && m.To == 30 && ann.Owner == owner {
			redirected = true
		}
	}
	if !redirected {
		t.Fatal("handover did not announce the restored owner to the recorded subscriber")
	}
}

func TestGossipEnablesOrphanAdoption(t *testing.T) {
	det := fakeDetector{}
	sups := planeSups(det, 2)
	owner := ownerOf(sups, tp)
	var other sim.NodeID
	for id := range sups {
		if id != owner {
			other = id
		}
	}
	// The peer learns of the topic only through gossip, then the owner
	// dies. The peer must adopt above the gossiped era.
	sups[other].OnMessage(simtest.NewCtx(other), sim.Message{To: other, From: owner,
		Body: proto.PlaneGossip{Entries: []proto.TopicEpoch{{Topic: tp, Epoch: 4}}}})
	det[owner] = true
	c := simtest.NewCtx(other)
	sups[other].OnTimeout(c)
	if !sups[other].Hosts(tp) {
		t.Fatal("survivor did not adopt the gossiped orphan")
	}
	if e := sups[other].EpochOf(tp); e <= 4 {
		t.Fatalf("adopted at epoch %d, must exceed the gossiped era 4", e)
	}
}

func TestCorruptPlaneSelfHeals(t *testing.T) {
	det := fakeDetector{}
	sups := planeSups(det, 3)
	owner := ownerOf(sups, tp)
	oc := simtest.NewCtx(owner)
	sups[owner].OnMessage(oc, sim.Message{To: owner, From: 30, Topic: tp, Body: proto.Subscribe{V: 30}})

	// Iterate supervisors in ID order: drawing from the shared seeded rng
	// in map order would make the corruption sequence differ per run.
	ids := make([]sim.NodeID, 0, len(sups))
	for id := range sups {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	rng := rand.New(rand.NewSource(9))
	for round := 0; round < 12; round++ {
		for _, id := range ids {
			sups[id].CorruptPlane(tp, rng)
		}
		// Let the slow reconcile pass run on everyone a few times.
		for _, id := range ids {
			c := simtest.NewCtx(id)
			for i := 0; i < 2*gossipEvery; i++ {
				sups[id].OnTimeout(c)
			}
			// Deliver gossip/handovers between supervisors by hand.
			for _, m := range c.Take() {
				if dst, ok := sups[m.To]; ok {
					dst.OnMessage(simtest.NewCtx(m.To), m)
				}
			}
		}
	}
	// Converged claim: exactly the hash owner hosts the topic.
	for id, s := range sups {
		want := id == owner
		if s.Hosts(tp) != want {
			t.Fatalf("after corruption storms, supervisor %d hosts=%v want %v", id, s.Hosts(tp), want)
		}
	}
}

func TestTopicKeyStable(t *testing.T) {
	if hashdht.TopicKey(7) != "t/7" {
		t.Fatalf("TopicKey(7) = %q", hashdht.TopicKey(7))
	}
	r := hashdht.NewRing(0)
	r.Add(1)
	r.Add(2)
	a, _ := r.OwnerTopic(9)
	b, _ := r.Owner(hashdht.TopicKey(9))
	if a != b {
		t.Fatalf("OwnerTopic and Owner(TopicKey) disagree: %d vs %d", a, b)
	}
}
