// Ordered index over the topic database: a treap keyed by the r-ordering
// of labels. It replaces the sorted-slice cache that was rebuilt with a full
// O(n log n) sort whenever the database changed — at 10^5+ subscribers that
// rebuild (triggered by every subscribe via the configuration send) turned
// the paper's O(log n) join into O(n log n) and the whole join wave into
// O(n^2 log n). The treap gives O(log n) insert/delete/neighbor/k-th.
//
// Determinism matters here: the deterministic simulator replays runs
// bit-exactly, so the index must not depend on map iteration order or a
// random source. A treap whose priorities are a pure hash of the key has a
// shape that is a function of the key *set* alone — the heap order and BST
// order together determine the tree uniquely, regardless of insertion
// order. Ties in the r-ordering (malformed labels sharing a Frac, possible
// only in corrupted states) are broken by (Len, Bits) so the order is total
// and stable, which the old sort.Slice by Frac alone did not guarantee.

package supervisor

import (
	"sspubsub/internal/label"
	"sspubsub/internal/sim"
)

// onode is one treap node: a (label, subscriber) tuple plus heap priority
// and subtree size (for k-th element queries used by the round-robin
// refresh during a rebuild grace).
type onode struct {
	l           label.Label
	id          sim.NodeID
	prio        uint64
	size        int
	left, right *onode
}

// ordIndex is the treap root. The zero value is an empty index.
type ordIndex struct {
	root *onode
}

// cmpLabel orders labels by ring position (Frac), breaking the corrupted-
// state ties by length then bits. Total and deterministic.
func cmpLabel(a, b label.Label) int {
	af, bf := a.Frac(), b.Frac()
	switch {
	case af < bf:
		return -1
	case af > bf:
		return 1
	case a.Len < b.Len:
		return -1
	case a.Len > b.Len:
		return 1
	case a.Bits < b.Bits:
		return -1
	case a.Bits > b.Bits:
		return 1
	}
	return 0
}

// labelPrio derives the heap priority from the key itself (two rounds of
// splitmix64 over the label's fields, which identify it uniquely), so the
// treap shape is a pure function of the key set and replays are bit-exact.
func labelPrio(l label.Label) uint64 {
	return splitmix64(splitmix64(l.Bits) ^ uint64(l.Len))
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ x>>30) * 0xBF58476D1CE4E5B9
	x = (x ^ x>>27) * 0x94D049BB133111EB
	return x ^ x>>31
}

func osize(n *onode) int {
	if n == nil {
		return 0
	}
	return n.size
}

func (n *onode) fix() { n.size = 1 + osize(n.left) + osize(n.right) }

func rotRight(n *onode) *onode {
	l := n.left
	n.left = l.right
	l.right = n
	n.fix()
	l.fix()
	return l
}

func rotLeft(n *onode) *onode {
	r := n.right
	n.right = r.left
	r.left = n
	n.fix()
	r.fix()
	return r
}

func oinsert(n, nn *onode) *onode {
	if n == nil {
		nn.size = 1
		return nn
	}
	if cmpLabel(nn.l, n.l) < 0 {
		n.left = oinsert(n.left, nn)
		if n.left.prio > n.prio {
			n = rotRight(n)
		}
	} else {
		n.right = oinsert(n.right, nn)
		if n.right.prio > n.prio {
			n = rotLeft(n)
		}
	}
	n.fix()
	return n
}

func omerge(a, b *onode) *onode {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.prio > b.prio {
		a.right = omerge(a.right, b)
		a.fix()
		return a
	}
	b.left = omerge(a, b.left)
	b.fix()
	return b
}

func oremove(n *onode, l label.Label) *onode {
	if n == nil {
		return nil
	}
	switch c := cmpLabel(l, n.l); {
	case c < 0:
		n.left = oremove(n.left, l)
	case c > 0:
		n.right = oremove(n.right, l)
	default:
		return omerge(n.left, n.right)
	}
	n.fix()
	return n
}

func (x *ordIndex) len() int { return osize(x.root) }

// get returns the node holding exactly l, or nil.
func (x *ordIndex) get(l label.Label) *onode {
	n := x.root
	for n != nil {
		switch c := cmpLabel(l, n.l); {
		case c < 0:
			n = n.left
		case c > 0:
			n = n.right
		default:
			return n
		}
	}
	return nil
}

// insert records l → id, replacing the subscriber in place if l is already
// present (no structural change, so the shape invariant is preserved).
func (x *ordIndex) insert(l label.Label, id sim.NodeID) {
	if n := x.get(l); n != nil {
		n.id = id
		return
	}
	x.root = oinsert(x.root, &onode{l: l, id: id, prio: labelPrio(l)})
}

// remove deletes l if present.
func (x *ordIndex) remove(l label.Label) { x.root = oremove(x.root, l) }

// min and max return the first and last nodes in r-order, or nil when empty.
func (x *ordIndex) min() *onode {
	n := x.root
	if n == nil {
		return nil
	}
	for n.left != nil {
		n = n.left
	}
	return n
}

func (x *ordIndex) max() *onode {
	n := x.root
	if n == nil {
		return nil
	}
	for n.right != nil {
		n = n.right
	}
	return n
}

// pred returns the greatest node strictly before l, or nil.
func (x *ordIndex) pred(l label.Label) *onode {
	var best *onode
	for n := x.root; n != nil; {
		if cmpLabel(n.l, l) < 0 {
			best = n
			n = n.right
		} else {
			n = n.left
		}
	}
	return best
}

// succ returns the least node strictly after l, or nil.
func (x *ordIndex) succ(l label.Label) *onode {
	var best *onode
	for n := x.root; n != nil; {
		if cmpLabel(n.l, l) > 0 {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	return best
}

// ceil returns the least node at or after l, or nil.
func (x *ordIndex) ceil(l label.Label) *onode {
	var best *onode
	for n := x.root; n != nil; {
		if cmpLabel(n.l, l) >= 0 {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	return best
}

// kth returns the k-th node in r-order (0-based), or nil if out of range.
func (x *ordIndex) kth(k int) *onode {
	n := x.root
	for n != nil {
		ls := osize(n.left)
		switch {
		case k < ls:
			n = n.left
		case k > ls:
			k -= ls + 1
			n = n.right
		default:
			return n
		}
	}
	return nil
}

// walk visits every tuple in r-order.
func (x *ordIndex) walk(f func(l label.Label, id sim.NodeID)) {
	var rec func(n *onode)
	rec = func(n *onode) {
		if n == nil {
			return
		}
		rec(n.left)
		f(n.l, n.id)
		rec(n.right)
	}
	rec(x.root)
}
