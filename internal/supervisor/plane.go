// Supervisor plane: the crash-tolerant multi-supervisor layer.
//
// The paper's model has a single reliable supervisor. The plane removes
// that reliability assumption while keeping every per-topic algorithm
// untouched: topics are sharded over the supervisor set by consistent
// hashing (the Section 1.3 extension), and ownership itself becomes soft,
// self-stabilizing state:
//
//   - Peer monitoring. Every supervisor screens its peers against the
//     system-wide failure detector on each Timeout — the same machinery
//     Section 3.3 uses to cull crashed subscribers.
//   - Minimal migration. Suspicion transitions remove (or re-add) the peer
//     on the local consistent-hashing ring and run Directory.Rebalance:
//     only topics whose owner actually changed move, the consistent-hashing
//     guarantee that makes supervisor failover affordable.
//   - Database reconstruction. An adopting supervisor starts from an empty
//     database at a fresh ownership epoch; the subscribers themselves are
//     the database of record. Each survivor re-reports its (label, epoch)
//     through the Reregister handshake — triggered by an OwnerAnnounce from
//     a handing-over owner, or by the subscriber's own staleness probe when
//     its owner died silently — and the adopter re-admits it under its old
//     label while the rebuild grace holds off relabelling. The surviving
//     skip ring never has to be rebuilt.
//   - Epoch ordering. Ownership eras are totally ordered per topic by an
//     epoch counter carried in SetData, OwnerAnnounce and PlaneGossip.
//     Subscribers ignore third-party configurations from older eras, which
//     is exactly what makes a deposed-but-alive owner harmless; epoch
//     repair (jumping past any higher epoch a subscriber reports) makes
//     arbitrary initial epoch states converge too.
//
// All plane state — ring view, directory cache, known epochs, even the
// hosting flags themselves — is recomputed or repairable from the detector
// and the overlay, so chaos-corrupting the directory is a recoverable
// fault like any other.
package supervisor

import (
	"sort"

	"sspubsub/internal/hashdht"
	"sspubsub/internal/label"
	"sspubsub/internal/proto"
	"sspubsub/internal/sim"
)

const (
	// rebuildGrace is how many Timeouts a freshly adopted database waits
	// before CheckLabels may relabel: long enough for every survivor's
	// staleness probe (initial threshold staleProbeInit in package core)
	// plus the detector grace and a round trip, short enough that a
	// post-rebuild repair still converges quickly.
	rebuildGrace = 48
	// gossipEvery is the plane heartbeat period in Timeouts: how often a
	// supervisor pushes its hosted topics' epochs to its live peers and
	// runs the slow ownership reconcile that heals plane-state corruption
	// no suspicion transition will ever report.
	gossipEvery = 4
)

// plane is the per-supervisor view of the sharded ownership layer.
type plane struct {
	// peers is the static supervisor set (sorted, including self): the
	// commonly known gateways of the system, fixed at deployment like the
	// paper's single supervisor.
	peers []sim.NodeID
	// ring is the consistent-hashing ring over the peers this supervisor
	// currently believes alive; dir caches topic placements over it so
	// Rebalance can report exactly the topics a membership change moved.
	ring *hashdht.Ring
	dir  *hashdht.Directory
	// keyTopic maps placement keys back to wire topic IDs.
	keyTopic map[string]sim.Topic
	// suspected is the last detector verdict per peer; transitions drive
	// ring membership and migration.
	suspected map[sim.NodeID]bool
	// known is the highest ownership epoch observed per topic (hosted or
	// gossiped) — the floor a future adoption must start above.
	known map[sim.Topic]uint64
	tick  uint64
}

// JoinPlane turns this supervisor into a member of a sharded, crash-
// tolerant supervisor plane. peers is the full static supervisor set
// (including this supervisor); every member must be given the same set.
// Call before the supervisor is registered on a transport. A supervisor
// that never joins a plane behaves exactly as the paper's single reliable
// supervisor and pays no plane overhead.
func (s *Supervisor) JoinPlane(peers []sim.NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ps := append([]sim.NodeID(nil), peers...)
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	ring := hashdht.NewRing(0)
	for _, p := range ps {
		ring.Add(p)
	}
	s.plane = &plane{
		peers:     ps,
		ring:      ring,
		dir:       hashdht.NewDirectory(ring),
		keyTopic:  make(map[string]sim.Topic),
		suspected: make(map[sim.NodeID]bool),
		known:     make(map[sim.Topic]uint64),
	}
}

// viewOwner returns the supervisor this node currently believes owns the
// topic: the consistent-hashing owner over the unsuspected peers. Without
// a plane the supervisor owns everything. Lock held.
func (s *Supervisor) viewOwner(t sim.Topic) sim.NodeID {
	if s.plane == nil {
		return s.self
	}
	key := hashdht.TopicKey(t)
	s.plane.keyTopic[key] = t
	owner, ok := s.plane.dir.Lookup(key)
	if !ok {
		return sim.None
	}
	return owner
}

// PlaneOwner reports which supervisor this node believes owns the topic
// (itself when no plane is configured).
func (s *Supervisor) PlaneOwner(t sim.Topic) sim.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.viewOwner(t)
}

// planeTimeout is the per-Timeout plane action: screen peers, migrate the
// topics a suspicion transition moved, and periodically reconcile + gossip.
// Lock held.
func (s *Supervisor) planeTimeout(ctx sim.Context) {
	p := s.plane
	if p == nil || len(p.peers) <= 1 {
		return
	}
	p.tick++
	changed := false
	for _, peer := range p.peers {
		if peer == s.self {
			continue
		}
		sus := s.detector.Suspects(peer)
		if sus == p.suspected[peer] {
			continue
		}
		p.suspected[peer] = sus
		changed = true
		if sus {
			p.ring.Remove(peer)
		} else {
			p.ring.Add(peer)
		}
	}
	if changed {
		// Minimal migration: Rebalance reports exactly the topics whose
		// owner the membership change moved; everything else stays put.
		moved := p.dir.Rebalance()
		keys := make([]string, 0, len(moved))
		for k := range moved {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if t, ok := p.keyTopic[k]; ok {
				s.reconcileTopic(ctx, t)
			}
		}
	}
	s.replicaTimeout(ctx)
	if p.tick%gossipEvery != 0 {
		return
	}
	// Slow path: full reconcile over every known topic. Suspicion
	// transitions already handled the common case above; this pass heals
	// states no transition reports — plane corruption, lost gossip, a
	// topic learned after its owner died.
	for _, t := range s.planeTopics() {
		s.reconcileTopic(ctx, t)
	}
	s.gossip(ctx)
}

// planeTopics returns hosted ∪ known topics, sorted (determinism). Lock
// held.
func (s *Supervisor) planeTopics() []sim.Topic {
	seen := make(map[sim.Topic]bool, len(s.topics)+len(s.plane.known))
	out := make([]sim.Topic, 0, len(s.topics)+len(s.plane.known))
	for t := range s.topics {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for t := range s.plane.known {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// reconcileTopic drives one topic's hosting state toward the view: adopt
// what we should own and do not host, hand over what we host but should
// not own. Lock held.
func (s *Supervisor) reconcileTopic(ctx sim.Context, t sim.Topic) {
	owner := s.viewOwner(t)
	db, hosting := s.topics[t]
	switch {
	case owner == s.self && !hosting:
		s.adopt(ctx, t)
	case owner != s.self && hosting:
		s.handover(ctx, t, db, owner)
	}
}

// adopt starts hosting a topic at a fresh ownership epoch. With a warm,
// current replica of the topic's directory (replica.go) the new database
// is seeded from it and the adopter announces itself to every recorded
// subscriber immediately — the subscribers re-home in one round trip and
// keep their labels, so failover cost no longer scales with the
// subscriber count. Without one (replication off, replica stale or
// absent) the era opens with an empty database under the full rebuild
// grace and the subscribers re-populate it through the Reregister
// handshake, as before. Either way the grace budget graceCeil caps how
// long in-grace Reregisters can keep relabelling deferred. Lock held.
func (s *Supervisor) adopt(ctx sim.Context, t sim.Topic) {
	p := s.plane
	epoch := p.known[t] + 1
	db := newTopicDB()
	db.epoch = epoch
	db.track = s.repFactor > 0
	db.grace = rebuildGrace
	db.graceCeil = graceCeiling
	db.mode = s.defaultMode
	if rep := s.replicas[t]; s.warmUsable(rep, t) {
		db.seedFromReplica(rep)
		db.mode = rep.mode
		// A short grace still covers stragglers, and one post-grace
		// CheckLabels pass verifies compactness in case the replica missed
		// the owner's last few mutations.
		db.grace = warmGrace
		db.graceCeil = rebuildGrace
		db.dirty = true
		delete(s.replicas, t)
		db.idx.walk(func(_ label.Label, id sim.NodeID) {
			if id != sim.None && id != s.self {
				ctx.Send(id, t, proto.OwnerAnnounce{Owner: s.self, Epoch: epoch})
			}
		})
	}
	s.topics[t] = db
	p.known[t] = epoch
}

// handover yields a hosted topic to its rightful owner: every recorded
// subscriber is pointed at the successor (which re-registers it under its
// current label), the successor is told the epoch floor, and the local
// database is dropped. Lock held.
func (s *Supervisor) handover(ctx sim.Context, t sim.Topic, db *topicDB, owner sim.NodeID) {
	next := db.epoch + 1
	if owner != sim.None {
		db.idx.walk(func(_ label.Label, id sim.NodeID) {
			if id != sim.None && id != s.self {
				ctx.Send(id, t, proto.OwnerAnnounce{Owner: owner, Epoch: next})
			}
		})
		ctx.Send(owner, t, proto.PlaneGossip{Entries: []proto.TopicEpoch{{Topic: t, Epoch: next}}})
	}
	delete(s.topics, t)
	if s.plane != nil && next > s.plane.known[t] {
		s.plane.known[t] = next
	}
}

// gossip pushes the hosted topics' epochs to every live peer. Lock held.
func (s *Supervisor) gossip(ctx sim.Context) {
	p := s.plane
	if len(s.topics) == 0 {
		return
	}
	hosted := make([]sim.Topic, 0, len(s.topics))
	for t := range s.topics {
		hosted = append(hosted, t)
	}
	sort.Slice(hosted, func(i, j int) bool { return hosted[i] < hosted[j] })
	entries := make([]proto.TopicEpoch, len(hosted))
	for i, t := range hosted {
		entries[i] = proto.TopicEpoch{Topic: t, Epoch: s.topics[t].epoch}
	}
	for _, peer := range p.peers {
		if peer == s.self || p.suspected[peer] {
			continue
		}
		ctx.Send(peer, 0, proto.PlaneGossip{Entries: entries})
	}
}

// redirectIfNotOwner answers a request for a topic this supervisor does
// not own with the owner it believes in, and reports whether it did. Lock
// held.
func (s *Supervisor) redirectIfNotOwner(ctx sim.Context, t sim.Topic, v sim.NodeID) bool {
	if s.plane == nil {
		return false
	}
	owner := s.viewOwner(t)
	if owner == s.self || owner == sim.None {
		return false
	}
	if v != sim.None && v != s.self {
		ctx.Send(v, t, proto.OwnerAnnounce{Owner: owner, Epoch: s.plane.known[t]})
	}
	return true
}

// reregister handles the subscriber half of the WhoSupervises handshake.
// If this supervisor owns the topic it re-admits the subscriber —
// preserving a well-formed, unclaimed reported label, the soft-state
// database reconstruction — and repairs its epoch past any newer era the
// subscriber has witnessed. Otherwise it redirects. Lock held.
func (s *Supervisor) reregister(ctx sim.Context, t sim.Topic, b proto.Reregister) {
	v := b.V
	if v == sim.None || v == s.self {
		return
	}
	if s.redirectIfNotOwner(ctx, t, v) {
		return
	}
	db, hosting := s.topics[t]
	if !hosting {
		// First contact for a topic we own but never adopted (our hosting
		// flag was lost, or the topic's owner died before we ever saw it):
		// this Reregister IS the rebuild starting — open a fresh era under
		// rebuild grace like any other adoption.
		if s.plane != nil {
			s.adopt(ctx, t)
			db = s.topics[t]
		} else {
			db = s.topic(t)
		}
	}
	if b.Epoch > db.epoch {
		// The subscriber was served by a newer era than ours (we adopted
		// without gossip, or restarted with stale state): jump past it, or
		// every configuration we send would be ignored as stale.
		db.epoch = b.Epoch + 1
		if s.plane != nil && db.epoch > s.plane.known[t] {
			s.plane.known[t] = db.epoch
		}
	}
	db.checkLabels()
	db.checkMultipleCopies(v)
	if db.labelOf(v) != label.Bottom {
		s.sendConfiguration(ctx, t, db, v)
		return
	}
	if b.Label.Valid() && !b.Label.IsBottom() {
		if _, taken := db.db[b.Label]; !taken {
			db.put(b.Label, v)
			// The re-reported label is whatever the survivor held before the
			// failover — almost never the compact l(0 … n−1), so the
			// post-grace CheckLabels has repair work.
			db.dirty = true
			if db.grace > 0 {
				// Still rebuilding: extend the grace so the re-registration
				// wave finishes before relabelling may run — but never past
				// the era's remaining grace budget, or a sustained
				// Reregister stream (chaos churn) could defer relabelling
				// forever.
				if g := min(rebuildGrace, db.graceCeil); g > db.grace {
					db.grace = g
				}
			}
			s.sendConfiguration(ctx, t, db, v)
			return
		}
	}
	// ⊥, malformed or conflicting label: fall back to a fresh subscription.
	s.subscribe(ctx, t, v)
}

// absorbGossip merges a peer's epoch knowledge: raises epoch floors,
// learns topics (enabling adoption of orphans we never served), and lets a
// stale restarted owner jump to the current era. Lock held.
func (s *Supervisor) absorbGossip(g proto.PlaneGossip) {
	if s.plane == nil {
		return
	}
	for _, e := range g.Entries {
		if e.Epoch > s.plane.known[e.Topic] {
			s.plane.known[e.Topic] = e.Epoch
		}
		if db, ok := s.topics[e.Topic]; ok && e.Epoch > db.epoch && s.viewOwner(e.Topic) == s.self {
			db.epoch = e.Epoch
		}
		// Register the topic with the directory; the reconcile pass adopts
		// it if it hashes to us and nobody hosts it (its owner died before
		// we ever saw the topic).
		_ = s.viewOwner(e.Topic)
	}
}

// CorruptPlane scrambles this supervisor's plane state for a topic — the
// "chaos corruption of the directory itself" fault: hosting flags, epochs
// and the routing cache are all fair game. Everything it breaks is soft
// state the reconcile/gossip/epoch-repair machinery must rebuild; it never
// touches subscriber-side state. A no-op without a plane.
func (s *Supervisor) CorruptPlane(t sim.Topic, rng interface{ Intn(int) int }) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.plane
	if p == nil {
		return
	}
	switch rng.Intn(3) {
	case 0:
		// Ownership amnesia: silently drop the hosted database (and with a
		// plane-wide memory lapse, the epoch floor too).
		delete(s.topics, t)
		if rng.Intn(2) == 0 {
			delete(p.known, t)
		}
	case 1:
		// Epoch scramble: the hosted era and the floor regress arbitrarily.
		if db, ok := s.topics[t]; ok {
			db.epoch = uint64(rng.Intn(3))
		}
		p.known[t] = uint64(rng.Intn(3))
	default:
		// Routing poison: claim a topic we may not own (empty database at a
		// bogus era) and poison the directory cache with a wrong owner.
		if _, ok := s.topics[t]; !ok {
			db := newTopicDB()
			db.epoch = uint64(rng.Intn(3))
			db.track = s.repFactor > 0
			s.topics[t] = db
		}
		wrong := p.peers[rng.Intn(len(p.peers))]
		p.dir.ForceOwner(hashdht.TopicKey(t), wrong)
	}
}
