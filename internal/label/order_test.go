package label

import (
	"sort"
	"testing"
	"testing/quick"
)

// brute-force reference: sort l(0…n−1) by frac.
func sortedLabels(n uint64) []Label {
	out := make([]Label, n)
	for x := uint64(0); x < n; x++ {
		out[x] = FromIndex(x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Frac() < out[j].Frac() })
	return out
}

func TestNthInOrderMatchesBruteForce(t *testing.T) {
	for _, n := range []uint64{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 100, 255, 256, 257} {
		want := sortedLabels(n)
		for i := uint64(0); i < n; i++ {
			if got := NthInOrder(n, i); got != want[i] {
				t.Fatalf("NthInOrder(%d, %d) = %v, want %v", n, i, got, want[i])
			}
		}
	}
}

func TestRankOfInvertsNthInOrder(t *testing.T) {
	f := func(nRaw uint16, iRaw uint16) bool {
		n := uint64(nRaw%2000) + 1
		i := uint64(iRaw) % n
		lab := NthInOrder(n, i)
		rank, ok := RankOf(n, lab)
		return ok && rank == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRankOfRejectsForeignLabels(t *testing.T) {
	if _, ok := RankOf(8, FromIndex(8)); ok {
		t.Error("l(8) is not in a population of 8")
	}
	if _, ok := RankOf(8, Bottom); ok {
		t.Error("⊥ has no rank")
	}
	if _, ok := RankOf(8, Label{Bits: 2, Len: 2}); ok {
		t.Error("malformed label has no rank")
	}
	if _, ok := RankOf(0, FromIndex(0)); ok {
		t.Error("empty population has no ranks")
	}
}

func TestNthInOrderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NthInOrder(4, 4)
}
