package label

import "testing"

// FuzzIndexRoundTrip checks the l(x) codec: FromIndex always yields a
// valid label and Index inverts it, over the supported index domain
// [0, 2^MaxLen-1) (MaxLen bounds the label length at 62 bits).
func FuzzIndexRoundTrip(f *testing.F) {
	for _, x := range []uint64{0, 1, 2, 3, 7, 8, 63, 64, 1 << 20, 1 << 61, 1<<61 - 1, 1<<62 - 1} {
		f.Add(x)
	}
	f.Fuzz(func(t *testing.T, x uint64) {
		x %= 1 << MaxLen // keep l(x) within MaxLen bits
		l := FromIndex(x)
		if !l.Valid() {
			t.Fatalf("FromIndex(%d) = %v invalid", x, l)
		}
		if got := l.Index(); got != x {
			t.Fatalf("Index(FromIndex(%d)) = %d", x, got)
		}
		// The string round trip must also be exact.
		p, err := Parse(l.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", l.String(), err)
		}
		if p != l {
			t.Fatalf("Parse(String(%v)) = %v", l, p)
		}
		// Frac/FromFrac is the ring-position encoding: exact for every
		// valid label.
		if got := FromFrac(l.Frac()); got != l {
			t.Fatalf("FromFrac(Frac(%v)) = %v", l, got)
		}
	})
}

// FuzzParse checks that Parse accepts exactly well-formed bit strings and
// that accepted inputs round-trip through String.
func FuzzParse(f *testing.F) {
	for _, s := range []string{"", "⊥", "0", "1", "01", "11", "0101", "x", "10", "00",
		"1111111111111111111111111111111111111111111111111111111111111111"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		l, err := Parse(s)
		if err != nil {
			return // rejected inputs carry no invariant
		}
		if !l.Valid() {
			t.Fatalf("Parse(%q) accepted invalid label %#v", s, l)
		}
		if l.IsBottom() {
			if s != "" && s != "⊥" {
				t.Fatalf("Parse(%q) = ⊥", s)
			}
			return
		}
		if got := l.String(); got != s {
			t.Fatalf("String(Parse(%q)) = %q", s, got)
		}
	})
}

// FuzzOrderRoundTrip checks the positional label arithmetic of the
// token-passing variant: RankOf inverts NthInOrder for every (n, i), and
// the enumeration is strictly r-increasing locally.
func FuzzOrderRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(0))
	f.Add(uint64(2), uint64(1))
	f.Add(uint64(5), uint64(3))
	f.Add(uint64(8), uint64(7))
	f.Add(uint64(1<<32), uint64(12345))
	f.Add(uint64(1<<62), uint64(999999))
	f.Fuzz(func(t *testing.T, n, i uint64) {
		n %= 1<<MaxLen + 1 // label lengths reach ⌈log₂ n⌉ ≤ MaxLen
		if n == 0 {
			return
		}
		i %= n
		l := NthInOrder(n, i)
		if !l.Valid() {
			t.Fatalf("NthInOrder(%d, %d) = %v invalid", n, i, l)
		}
		rank, ok := RankOf(n, l)
		if !ok || rank != i {
			t.Fatalf("RankOf(%d, NthInOrder(%d, %d)) = (%d, %v)", n, n, i, rank, ok)
		}
		if i+1 < n {
			next := NthInOrder(n, i+1)
			if !l.Less(next) {
				t.Fatalf("order not increasing at %d/%d: %v !< %v", i, n, l, next)
			}
		}
	})
}
