// Package label implements the label algebra of the supervised skip ring
// (Feldmann et al., "Self-Stabilizing Supervised Publish-Subscribe Systems",
// Definition 2 and Section 3.2.2).
//
// The supervisor assigns subscriber x the label l(x): the binary
// representation of x with its leading bit moved to the units place.
// Labels are generated in the order 0, 1, 01, 11, 001, 011, 101, 111, 0001…
// A label y = (y1 … yd) is also interpreted as the real value
// r(y) = Σ yi/2^i in [0, 1), which induces the ring order.
//
// Labels are represented exactly: Bits holds the bit string read
// most-significant-first and Len its length. r(y) is represented as a 64-bit
// fixed-point fraction (Frac), so all comparisons and the shortcut
// reflection r(s) = 2·r(w) − r(v) are exact. The wrap 1.0 ≡ 0.0 of the ring
// falls out of mod-2^64 arithmetic, matching the paper's convention that the
// value 1 is represented by the subscriber with label 0.
package label

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxLen is the maximum supported label length. It bounds the number of
// subscribers per topic at 2^62, far beyond simulation scale, while keeping
// Frac arithmetic exact in 64 bits.
const MaxLen = 62

// Label is a bit string {0,1}^Len. The zero value is the bottom label ⊥
// (a subscriber that has not received a label yet); every valid label has
// Len ≥ 1. Labels are comparable with == and usable as map keys.
type Label struct {
	// Bits holds the label bits, first bit (y1) most significant.
	// Only the low Len bits are meaningful; the rest are zero.
	Bits uint64
	// Len is the number of bits; 0 means ⊥.
	Len uint8
}

// Bottom is the ⊥ label (no label assigned).
var Bottom = Label{}

// IsBottom reports whether l is the ⊥ label.
func (l Label) IsBottom() bool { return l.Len == 0 }

// Valid reports whether l is a well-formed label: ⊥, the unique label "0",
// or a bit string ending in 1 (every l(x) with x ≥ 1 ends in its leading
// bit, which is 1).
func (l Label) Valid() bool {
	if l.Len == 0 {
		return l.Bits == 0
	}
	if l.Len > MaxLen {
		return false
	}
	if l.Bits>>l.Len != 0 {
		return false
	}
	if l.Bits == 0 {
		return l.Len == 1 // label "0"
	}
	return l.Bits&1 == 1
}

// New constructs a label from its bit string value and length.
func New(bits uint64, length uint8) Label { return Label{Bits: bits, Len: length} }

// FromIndex computes l(x): the binary representation (x_d … x_0) of x with
// minimum d, rotated so the leading bit moves to the units place, i.e.
// (x_{d−1} … x_0 x_d). FromIndex(0) is the label "0".
func FromIndex(x uint64) Label {
	if x == 0 {
		return Label{Bits: 0, Len: 1}
	}
	d := uint8(bits.Len64(x) - 1) // position of the leading bit
	low := x & ((1 << d) - 1)     // x_{d−1} … x_0
	return Label{Bits: low<<1 | 1, Len: d + 1}
}

// Index computes l⁻¹(label), the subscriber index that was assigned this
// label. It is the inverse of FromIndex for valid non-⊥ labels.
func (l Label) Index() uint64 {
	if l.Len == 0 {
		panic("label: Index of ⊥")
	}
	if l.Bits == 0 {
		return 0
	}
	// label = (x_{d−1} … x_0 x_d) with x_d = 1 and Len = d+1.
	d := uint64(l.Len - 1)
	return (l.Bits >> 1) | (l.Bits&1)<<d
}

// Frac returns r(l) = Σ yi/2^i as a 64-bit fixed-point fraction:
// Frac/2^64 = r(l). Frac(⊥) is 0 by convention (callers must not order ⊥).
func (l Label) Frac() uint64 {
	if l.Len == 0 {
		return 0
	}
	return l.Bits << (64 - l.Len)
}

// FromFrac reconstructs the unique label with r(label) = frac/2^64.
// frac 0 maps to the label "0" (the ring position 0 ≡ 1).
func FromFrac(frac uint64) Label {
	if frac == 0 {
		return Label{Bits: 0, Len: 1}
	}
	t := bits.TrailingZeros64(frac)
	return Label{Bits: frac >> t, Len: uint8(64 - t)}
}

// Real returns r(l) as a float64, for display only.
func (l Label) Real() float64 { return float64(l.Frac()) / (1 << 63) / 2 }

// Less orders labels by r value. ⊥ labels must not be ordered.
func (l Label) Less(o Label) bool { return l.Frac() < o.Frac() }

// Compare returns −1, 0, +1 by r value.
func (l Label) Compare(o Label) int {
	a, b := l.Frac(), o.Frac()
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// String renders the bit string, or "⊥".
func (l Label) String() string {
	if l.Len == 0 {
		return "⊥"
	}
	var sb strings.Builder
	for i := int(l.Len) - 1; i >= 0; i-- {
		if l.Bits>>uint(i)&1 == 1 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// GoString renders the label with its real value, for debugging.
func (l Label) GoString() string {
	if l.Len == 0 {
		return "⊥"
	}
	return fmt.Sprintf("%s(%g)", l.String(), l.Real())
}

// Parse parses a bit string such as "011" into a label. An empty string is ⊥.
func Parse(s string) (Label, error) {
	if s == "" || s == "⊥" {
		return Bottom, nil
	}
	if len(s) > MaxLen {
		return Bottom, fmt.Errorf("label: %q longer than %d bits", s, MaxLen)
	}
	var b uint64
	for _, c := range s {
		switch c {
		case '0':
			b <<= 1
		case '1':
			b = b<<1 | 1
		default:
			return Bottom, fmt.Errorf("label: invalid character %q in %q", c, s)
		}
	}
	l := Label{Bits: b, Len: uint8(len(s))}
	if !l.Valid() {
		// Only "0" and strings ending in 1 are generated labels; accepting
		// others would create Labels that compare equal on Frac but not ==.
		return Bottom, fmt.Errorf("label: %q is not a well-formed label", s)
	}
	return l, nil
}

// MustParse is Parse that panics on error, for tests and tables.
func MustParse(s string) Label {
	l, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return l
}

// Reflect computes the label s with r(s) = 2·r(w) − r(v), the reflection of
// v across w on the ring (Section 3.2.2): w was inserted between s and v,
// so s is v's neighbour one level below w's. Arithmetic wraps mod 1.
func Reflect(v, w Label) Label {
	return FromFrac(2*w.Frac() - v.Frac())
}

// CircularDistance returns the distance between the ring positions of a and
// b, measured the short way around, as a 64-bit fraction of the circle.
func CircularDistance(a, b Label) uint64 {
	d := a.Frac() - b.Frac()
	if int64(d) < 0 {
		d = -d
	}
	return d
}

// LineDistance returns |r(a) − r(b)| without wrapping, as the paper's
// configuration-checking action (iii) uses plain distances on [0,1).
func LineDistance(a, b Label) uint64 {
	af, bf := a.Frac(), b.Frac()
	if af < bf {
		return bf - af
	}
	return af - bf
}

// ShortcutChain computes the chain of shortcut labels derived from one ring
// neighbour (Section 3.2.2): starting from neighbour label nb of node v, it
// repeatedly reflects (s ← 2·r(s_prev) − r(v), with s_0 = nb) while the
// current label is strictly longer than |v|, and returns the labels
// produced, nearest first, ending with the first label of length ≤ |v|
// (the level-|v| neighbour). If |nb| ≤ |v| the chain is just {nb}: the ring
// neighbour itself is already v's level-|v| neighbour on that side.
//
// The returned slice therefore contains v's neighbours in the rings
// R_{|nb|−1}, R_{|nb|−2}, …, R_{|v|} on one side. The last element is the
// terminal (level-|v|) label; all previous elements are shortcuts at level
// equal to their own length.
func ShortcutChain(v, nb Label) []Label {
	if v.IsBottom() || nb.IsBottom() {
		return nil
	}
	if nb.Len <= v.Len {
		return []Label{nb}
	}
	var out []Label
	cur := nb
	for cur.Len > v.Len {
		cur = Reflect(v, cur)
		out = append(out, cur)
		if len(out) > MaxLen { // corrupted-state guard: never loop forever
			break
		}
	}
	return out
}

// Shortcuts computes the complete set of shortcut labels node v must hold
// given its current ring neighbours (left and right labels), per the local
// derivation of Section 3.2.2. Ring neighbours themselves are not included.
// The second and third return values are the terminal level-|v| labels on
// the left and right side (which may equal left/right when those are already
// short enough); they are the pair v introduces to each other on Timeout.
func Shortcuts(v, left, right Label) (set []Label, levelLeft, levelRight Label) {
	if v.IsBottom() {
		return nil, Bottom, Bottom
	}
	if !left.IsBottom() {
		chain := ShortcutChain(v, left)
		levelLeft = chain[len(chain)-1]
		for _, s := range chain {
			if s != left {
				set = append(set, s)
			}
		}
	}
	if !right.IsBottom() {
		chain := ShortcutChain(v, right)
		levelRight = chain[len(chain)-1]
		for _, s := range chain {
			if s != right {
				set = append(set, s)
			}
		}
	}
	return set, levelLeft, levelRight
}

// Level returns the level of the edge (a, b) in the skip ring:
// max(|label_a|, |label_b|) (Definition 2).
func Level(a, b Label) uint8 {
	if a.Len > b.Len {
		return uint8(a.Len)
	}
	return uint8(b.Len)
}
