package label

// Positional label arithmetic for the token-passing supervisor variant
// (the deterministic future-work scheme of the paper's conclusion, where
// the supervisor stores only n and labels are derived from ring positions).
//
// The n labels l(0 … n−1) occupy a fixed sorted order on [0,1). With
// m = ⌈log₂ n⌉ and half = 2^{m−1}, the population is: all 2^{m−1} labels
// of length ≤ m−1 (a full power-of-two ring at fracs j/half) plus the
// first k = n − half labels of length m, which sit at fracs
// j/half + 1/2^m for j = 0 … k−1 — i.e. the new labels fill the leftmost
// gaps in generation order. The sorted sequence is therefore: pairs
// (old_j, new_j) for j < k, then the remaining old labels.

import "math/bits"

// ceilLog2 returns ⌈log₂ n⌉ for n ≥ 1.
func ceilLog2(n uint64) uint {
	if n <= 1 {
		return 0
	}
	return uint(bits.Len64(n - 1))
}

// NthInOrder returns the i-th label (0-based) in the r-ordering of the
// label population {l(0) … l(n−1)}. It panics if i ≥ n or n == 0.
func NthInOrder(n, i uint64) Label {
	if n == 0 || i >= n {
		panic("label: NthInOrder out of range")
	}
	if n == 1 {
		return FromIndex(0)
	}
	m := ceilLog2(n)
	half := uint64(1) << (m - 1)
	k := n - half // number of length-m labels present
	oldShift := 64 - (m - 1)
	if i < 2*k {
		j := i / 2
		oldFrac := j << oldShift
		if i%2 == 0 {
			return FromFrac(oldFrac)
		}
		return FromFrac(oldFrac | 1<<(64-m))
	}
	j := k + (i - 2*k)
	return FromFrac(j << oldShift)
}

// RankOf returns the position of lab in the r-ordering of {l(0) … l(n−1)},
// the inverse of NthInOrder. ok is false if lab is not in the population.
func RankOf(n uint64, lab Label) (uint64, bool) {
	if n == 0 || lab.IsBottom() || !lab.Valid() {
		return 0, false
	}
	x := lab.Index()
	if x >= n {
		return 0, false
	}
	if n == 1 {
		return 0, true
	}
	m := ceilLog2(n)
	half := uint64(1) << (m - 1)
	k := n - half
	oldShift := 64 - (m - 1)
	f := lab.Frac()
	if uint(lab.Len) == m && f&(1<<(64-m)) != 0 {
		// A new (length-m) label at frac j/half + 1/2^m → position 2j+1.
		// (The bit test also disambiguates n = 2, where both labels have
		// length m = 1 but only "1" carries the 2^{−m} offset.)
		j := (f &^ (1 << (64 - m))) >> oldShift
		return 2*j + 1, true
	}
	// An old label at frac j/half.
	j := f >> oldShift
	if j < k {
		return 2 * j, true
	}
	return 2*k + (j - k), true
}
