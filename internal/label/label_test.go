package label

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// The first labels in generation order, from Section 2.1 of the paper:
// "Labels are generated in the order: 0, 1, 01, 11, 001, 011, 101, 111, 0001…"
func TestFromIndexPaperSequence(t *testing.T) {
	want := []string{"0", "1", "01", "11", "001", "011", "101", "111", "0001"}
	for x, w := range want {
		if got := FromIndex(uint64(x)).String(); got != w {
			t.Errorf("l(%d) = %s, want %s", x, got, w)
		}
	}
}

// Figure 1 of the paper lists the triples (x, l(x), r(l(x))) for SR(16).
func TestFigure1Triples(t *testing.T) {
	cases := []struct {
		x     uint64
		label string
		real  float64
	}{
		{0, "0", 0}, {1, "1", 1.0 / 2}, {2, "01", 1.0 / 4}, {3, "11", 3.0 / 4},
		{4, "001", 1.0 / 8}, {5, "011", 3.0 / 8}, {6, "101", 5.0 / 8}, {7, "111", 7.0 / 8},
		{8, "0001", 1.0 / 16}, {9, "0011", 3.0 / 16}, {10, "0101", 5.0 / 16},
		{11, "0111", 7.0 / 16}, {12, "1001", 9.0 / 16}, {13, "1011", 11.0 / 16},
		{14, "1101", 13.0 / 16}, {15, "1111", 15.0 / 16},
	}
	for _, c := range cases {
		l := FromIndex(c.x)
		if l.String() != c.label {
			t.Errorf("l(%d) = %s, want %s", c.x, l, c.label)
		}
		if l.Real() != c.real {
			t.Errorf("r(l(%d)) = %g, want %g", c.x, l.Real(), c.real)
		}
	}
}

func TestIndexInvertsFromIndex(t *testing.T) {
	f := func(x uint64) bool {
		x %= 1 << 50
		return FromIndex(x).Index() == x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestFracFromFracRoundTrip(t *testing.T) {
	f := func(x uint64) bool {
		l := FromIndex(x % (1 << 40))
		return FromFrac(l.Frac()) == l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestLabelLengths(t *testing.T) {
	// f(1) = 2 labels of length 1, f(k) = 2^{k−1} labels of length k (Lemma 3).
	counts := map[uint8]int{}
	for x := uint64(0); x < 1024; x++ {
		counts[FromIndex(x).Len]++
	}
	if counts[1] != 2 {
		t.Errorf("f(1) = %d, want 2", counts[1])
	}
	for k := uint8(2); k <= 10; k++ {
		if want := 1 << (k - 1); counts[k] != want {
			t.Errorf("f(%d) = %d, want %d", k, counts[k], want)
		}
	}
}

// New labels in generation x ∈ {2^d … 2^{d+1}−1} fall exactly halfway
// between consecutive older labels (uniform spreading, Section 2.1).
func TestUniformSpreading(t *testing.T) {
	for d := 1; d <= 8; d++ {
		var old []uint64
		for x := uint64(0); x < 1<<d; x++ {
			old = append(old, FromIndex(x).Frac())
		}
		sort.Slice(old, func(i, j int) bool { return old[i] < old[j] })
		for x := uint64(1 << d); x < 1<<(d+1); x++ {
			f := FromIndex(x).Frac()
			i := sort.Search(len(old), func(i int) bool { return old[i] > f })
			lo := old[i-1]
			hi := uint64(0) // wrap: next is 1.0 ≡ 0
			if i < len(old) {
				hi = old[i]
			}
			mid := lo + (hi-lo)/2 // wraps correctly for hi = 0
			if f != mid {
				t.Fatalf("d=%d x=%d: frac %x not midpoint of (%x, %x)", d, x, f, lo, hi)
			}
		}
	}
}

func TestParseString(t *testing.T) {
	for _, s := range []string{"0", "1", "01", "11", "0001", "1011"} {
		l, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if l.String() != s {
			t.Errorf("Parse(%q).String() = %q", s, l.String())
		}
	}
	if l, err := Parse(""); err != nil || !l.IsBottom() {
		t.Errorf("Parse(\"\") = %v, %v; want ⊥", l, err)
	}
	if _, err := Parse("10x"); err == nil {
		t.Error("Parse(10x) should fail")
	}
}

func TestValid(t *testing.T) {
	for x := uint64(0); x < 512; x++ {
		if !FromIndex(x).Valid() {
			t.Errorf("l(%d) not valid", x)
		}
	}
	if !Bottom.Valid() {
		t.Error("⊥ should be valid")
	}
	for _, bad := range []Label{
		{Bits: 2, Len: 2},  // "10": ends in 0, not a generated label
		{Bits: 0, Len: 2},  // "00"
		{Bits: 8, Len: 2},  // bits exceed length
		{Bits: 1, Len: 63}, // too long
	} {
		if bad.Valid() {
			t.Errorf("%v should be invalid", bad)
		}
	}
}

// The running example of Section 3.2.2: subscriber 1/4 ("01") with ring
// neighbours 3/16 ("0011") and 5/16 ("0101") derives shortcuts
// 1/8 then 0 on the left and 3/8 then 1/2 on the right.
func TestShortcutChainPaperExample(t *testing.T) {
	v := MustParse("01")       // 1/4
	left := MustParse("0011")  // 3/16
	right := MustParse("0101") // 5/16

	gotL := ShortcutChain(v, left)
	wantL := []Label{MustParse("001"), MustParse("0")} // 1/8, 0
	if len(gotL) != len(wantL) {
		t.Fatalf("left chain %v, want %v", gotL, wantL)
	}
	for i := range wantL {
		if gotL[i] != wantL[i] {
			t.Errorf("left chain[%d] = %v, want %v", i, gotL[i], wantL[i])
		}
	}

	gotR := ShortcutChain(v, right)
	wantR := []Label{MustParse("011"), MustParse("1")} // 3/8, 1/2
	if len(gotR) != len(wantR) {
		t.Fatalf("right chain %v, want %v", gotR, wantR)
	}
	for i := range wantR {
		if gotR[i] != wantR[i] {
			t.Errorf("right chain[%d] = %v, want %v", i, gotR[i], wantR[i])
		}
	}
}

// A node whose ring neighbours are both short already (a deepest-level node)
// has no shortcuts: its chain is just the neighbour itself.
func TestShortcutChainDeepNode(t *testing.T) {
	v := MustParse("0011") // 3/16, length 4
	if got := ShortcutChain(v, MustParse("001")); len(got) != 1 || got[0] != MustParse("001") {
		t.Errorf("chain = %v, want [001]", got)
	}
	set, ll, lr := Shortcuts(v, MustParse("001"), MustParse("01"))
	if len(set) != 0 {
		t.Errorf("deep node should have no shortcut labels, got %v", set)
	}
	if ll != MustParse("001") || lr != MustParse("01") {
		t.Errorf("level pair = %v, %v; want 001, 01", ll, lr)
	}
}

// Reflection across the top of the ring: node 3/4 with right neighbour
// 7/8 reflects to 1.0 ≡ 0 (label "0").
func TestReflectWraps(t *testing.T) {
	got := Reflect(MustParse("11"), MustParse("111"))
	if got != MustParse("0") {
		t.Errorf("Reflect(3/4, 7/8) = %v, want label 0", got)
	}
}

// In a full ring SR(2^m), every node v has exactly 2 shortcut/ring labels
// per level in {|v|, …, m}, and the derived labels all exist in the ring.
func TestShortcutsStructure(t *testing.T) {
	const m = 5
	n := uint64(1) << m
	fracs := make([]uint64, 0, n)
	byFrac := map[uint64]Label{}
	for x := uint64(0); x < n; x++ {
		l := FromIndex(x)
		fracs = append(fracs, l.Frac())
		byFrac[l.Frac()] = l
	}
	sort.Slice(fracs, func(i, j int) bool { return fracs[i] < fracs[j] })
	for i, f := range fracs {
		v := byFrac[f]
		left := byFrac[fracs[(i+int(n)-1)%int(n)]]
		right := byFrac[fracs[(i+1)%int(n)]]
		set, ll, lr := Shortcuts(v, left, right)
		// Every derived label must exist in the ring.
		for _, s := range set {
			if _, ok := byFrac[s.Frac()]; !ok {
				t.Fatalf("node %v derived nonexistent shortcut %v", v, s)
			}
		}
		if _, ok := byFrac[ll.Frac()]; !ok || lr.Frac() == ll.Frac() && n > 2 && v.Len != 1 {
			if !ok {
				t.Fatalf("node %v level-left %v does not exist", v, ll)
			}
		}
		// Count per level: shortcuts at levels |v| … m−1, two per level
		// (counting the terminal labels at level |v|).
		perLevel := map[uint8]int{}
		for _, s := range set {
			perLevel[Level(v, s)]++
		}
		// ring edges are level m; set excludes ring neighbours.
		want := 2 * (int(m) - int(v.Len)) // levels |v| … m−1, minus the 2 ring edges
		if len(set) != want {
			t.Errorf("node %v: %d shortcut labels, want %d (set %v)", v, len(set), want, set)
		}
		for lvl, c := range perLevel {
			if c != 2 {
				t.Errorf("node %v: %d shortcuts at level %d, want 2", v, c, lvl)
			}
		}
	}
}

func TestCircularDistance(t *testing.T) {
	a, b := MustParse("0001"), MustParse("1111") // 1/16 and 15/16: 1/8 apart around 0
	if got := CircularDistance(a, b); got != uint64(1)<<61 {
		t.Errorf("CircularDistance = %x, want %x (1/8)", got, uint64(1)<<61)
	}
	if got := LineDistance(a, b); got != (uint64(7) << 61) {
		t.Errorf("LineDistance = %x, want %x (7/8)", got, uint64(7)<<61)
	}
}

func TestOrderingMatchesReal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := FromIndex(rng.Uint64()%100000), FromIndex(rng.Uint64()%100000)
		if a.Less(b) != (a.Real() < b.Real()) && a.Frac() != b.Frac() {
			t.Fatalf("ordering mismatch %v vs %v", a, b)
		}
		if (a.Compare(b) == 0) != (a == b) {
			t.Fatalf("compare/equality mismatch %v vs %v", a, b)
		}
	}
}

func TestLevel(t *testing.T) {
	if Level(MustParse("01"), MustParse("0011")) != 4 {
		t.Error("level of (1/4, 3/16) should be 4")
	}
	if Level(MustParse("01"), MustParse("0")) != 2 {
		t.Error("level of (1/4, 0) should be 2")
	}
}
