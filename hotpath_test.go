package sspubsub

import (
	"fmt"
	"testing"
	"time"
)

// TestPublishFanoutAllocGuard enforces the zero-allocation hot-path
// budget end to end on the deterministic substrate: one publication,
// flooded to all 16 subscribers, must stay within a fixed allocation
// budget. The pre-optimization cost of this exact loop was ~394
// allocations; the measured cost after the hot-path work is ~44 (trie
// leaf nodes, one boxed body per forwarding hop, and the convergence
// predicate's bookkeeping). The budget of 80 leaves room for Go-version
// drift while still failing loudly if a per-message allocation sneaks
// back into the scheduler, codec or flooding layers.
func TestPublishFanoutAllocGuard(t *testing.T) {
	s := NewSimulation(SimOptions{Runtime: RuntimeSim, Seed: 11, Interval: time.Millisecond, DisableAntiEntropy: true})
	defer s.Close()
	const n = 16
	s.AddSubscribers(n)
	s.JoinAll(benchTopic)
	if _, ok := s.RunUntilConverged(benchTopic, n, 5000); !ok {
		t.Fatalf("setup: no convergence: %s", s.Explain(benchTopic))
	}
	members := s.Members(benchTopic)
	seq := 0
	// Publish in batches of 32 and drain once per batch, exactly like the
	// pinned benchmark: draining after every single publication would
	// charge each one several whole rounds of ring maintenance (every
	// node's periodic Check/SetData traffic), swamping the fan-out cost
	// under measurement.
	const batch = 32
	publishBatch := func() {
		for i := 0; i < batch; i++ {
			s.Publish(members[seq%len(members)], benchTopic, fmt.Sprintf("g%d", seq))
			seq++
		}
		want := seq
		if _, ok := s.RunUntil(5000, func() bool { return s.AllHavePubs(benchTopic, want) }); !ok {
			t.Fatalf("flood of publication %d never completed", want)
		}
	}
	publishBatch() // warm caches, heap capacity, accounting maps
	avg := testing.AllocsPerRun(10, publishBatch) / batch
	if avg > 80 {
		t.Errorf("publish fan-out allocates %.1f objects per publication, budget 80", avg)
	}
}
